//! SQL abstract syntax tree and its canonical textual rendering.
//!
//! The `Display` impls define the workspace's *canonical SQL spelling*:
//! upper-case keywords, lower-case identifiers, single spaces, `COUNT(*)`
//! without inner spaces, string literals single-quoted. Exact-match
//! evaluation compares canonical spellings, so every parser that builds an
//! AST automatically emits comparable text.

use nli_core::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A possibly qualified column name, textual until bind time.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColName {
    pub table: Option<String>,
    pub column: String,
}

impl ColName {
    pub fn new(column: &str) -> Self {
        ColName {
            table: None,
            column: column.to_lowercase(),
        }
    }

    pub fn qualified(table: &str, column: &str) -> Self {
        ColName {
            table: Some(table.to_lowercase()),
            column: column.to_lowercase(),
        }
    }
}

impl fmt::Display for ColName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{}.{}", t, self.column),
            None => f.write_str(&self.column),
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }

    pub const ALL: [AggFunc; 5] = [
        AggFunc::Count,
        AggFunc::Sum,
        AggFunc::Avg,
        AggFunc::Min,
        AggFunc::Max,
    ];
}

/// Binary operators, arithmetic and boolean.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::Neq => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }

    /// Binding strength for the canonical printer / parser: higher binds
    /// tighter.
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
            BinOp::Add | BinOp::Sub => 4,
            BinOp::Mul | BinOp::Div => 5,
        }
    }

    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Column reference.
    Column(ColName),
    /// Literal constant.
    Literal(Value),
    /// `*` — only valid inside `COUNT(*)` or as the lone select item.
    Star,
    /// Aggregate call; `distinct` renders as `COUNT(DISTINCT x)`.
    Agg {
        func: AggFunc,
        arg: Box<Expr>,
        distinct: bool,
    },
    /// Binary operation.
    Binary {
        left: Box<Expr>,
        op: BinOp,
        right: Box<Expr>,
    },
    /// Logical negation.
    Not(Box<Expr>),
    /// `expr LIKE 'pattern'` with `%`/`_` wildcards.
    Like {
        expr: Box<Expr>,
        pattern: String,
        negated: bool,
    },
    /// `expr BETWEEN lo AND hi`.
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    /// `expr IN (v1, v2, ...)`.
    InList {
        expr: Box<Expr>,
        list: Vec<Value>,
        negated: bool,
    },
    /// `expr IN (SELECT ...)` — uncorrelated.
    InSubquery {
        expr: Box<Expr>,
        query: Box<Query>,
        negated: bool,
    },
    /// `(SELECT ...)` used as a scalar (first column of first row).
    ScalarSubquery(Box<Query>),
    /// `expr IS [NOT] NULL`.
    IsNull { expr: Box<Expr>, negated: bool },
}

impl Expr {
    pub fn col(column: &str) -> Expr {
        Expr::Column(ColName::new(column))
    }

    pub fn qcol(table: &str, column: &str) -> Expr {
        Expr::Column(ColName::qualified(table, column))
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    pub fn agg(func: AggFunc, arg: Expr) -> Expr {
        Expr::Agg {
            func,
            arg: Box::new(arg),
            distinct: false,
        }
    }

    pub fn count_star() -> Expr {
        Expr::agg(AggFunc::Count, Expr::Star)
    }

    pub fn binary(left: Expr, op: BinOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// `left AND right`. Rewrite-safe: the canonical printer re-emits the
    /// same precedence structure, so rewrites built from these constructors
    /// round-trip through [`crate::parser::parse_query`] unchanged.
    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinOp::And, right)
    }

    /// `left OR right` (see [`Expr::and`] for the round-trip guarantee).
    pub fn or(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinOp::Or, right)
    }

    /// `NOT expr`. An associated constructor, not `ops::Not` — it wraps an
    /// operand rather than consuming `self`, mirroring `and`/`or`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(expr: Expr) -> Expr {
        Expr::Not(Box::new(expr))
    }

    /// `expr IS NULL` — total in three-valued logic (always `TRUE` or
    /// `FALSE`, never `NULL`), which makes it the safe splitting predicate
    /// for metamorphic `WHERE p` → `p AND q` / `p AND NOT q` partitions.
    pub fn is_null(expr: Expr) -> Expr {
        Expr::IsNull {
            expr: Box::new(expr),
            negated: false,
        }
    }

    /// Whether the expression (recursively) contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Not(e) => e.contains_aggregate(),
            Expr::Like { expr, .. }
            | Expr::Between { expr, .. }
            | Expr::InList { expr, .. }
            | Expr::InSubquery { expr, .. }
            | Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            _ => false,
        }
    }

    /// All column names referenced directly (not descending into
    /// subqueries, which have their own scopes).
    pub fn columns(&self) -> Vec<&ColName> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a ColName>) {
        match self {
            Expr::Column(c) => out.push(c),
            Expr::Agg { arg, .. } => arg.collect_columns(out),
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Not(e) => e.collect_columns(out),
            Expr::Like { expr, .. }
            | Expr::InList { expr, .. }
            | Expr::InSubquery { expr, .. }
            | Expr::IsNull { expr, .. } => expr.collect_columns(out),
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.collect_columns(out);
                low.collect_columns(out);
                high.collect_columns(out);
            }
            Expr::Literal(_) | Expr::Star | Expr::ScalarSubquery(_) => {}
        }
    }
}

fn fmt_literal(v: &Value, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match v {
        Value::Text(s) => write!(f, "'{}'", s.replace('\'', "''")),
        Value::Date(d) => write!(f, "'{d}'"),
        Value::Bool(b) => f.write_str(if *b { "TRUE" } else { "FALSE" }),
        other => f.write_str(&other.canonical()),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

impl Expr {
    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent_prec: u8) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(v) => fmt_literal(v, f),
            Expr::Star => f.write_str("*"),
            Expr::Agg {
                func,
                arg,
                distinct,
            } => {
                if *distinct {
                    write!(f, "{}(DISTINCT {arg})", func.name())
                } else {
                    write!(f, "{}({arg})", func.name())
                }
            }
            Expr::Binary { left, op, right } => {
                let prec = op.precedence();
                let needs_parens = prec < parent_prec;
                if needs_parens {
                    f.write_str("(")?;
                }
                left.fmt_prec(f, prec)?;
                write!(f, " {} ", op.symbol())?;
                // +1 on the right side keeps same-precedence chains
                // left-associated in reprints.
                right.fmt_prec(f, prec + 1)?;
                if needs_parens {
                    f.write_str(")")?;
                }
                Ok(())
            }
            Expr::Not(e) => {
                f.write_str("NOT ")?;
                e.fmt_prec(f, 6)
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                expr.fmt_prec(f, 3)?;
                write!(
                    f,
                    " {}LIKE '{}'",
                    if *negated { "NOT " } else { "" },
                    pattern.replace('\'', "''")
                )
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                expr.fmt_prec(f, 3)?;
                write!(f, " {}BETWEEN ", if *negated { "NOT " } else { "" })?;
                low.fmt_prec(f, 4)?;
                f.write_str(" AND ")?;
                high.fmt_prec(f, 4)
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                expr.fmt_prec(f, 3)?;
                write!(f, " {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, v) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    fmt_literal(v, f)?;
                }
                f.write_str(")")
            }
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => {
                expr.fmt_prec(f, 3)?;
                write!(f, " {}IN ({query})", if *negated { "NOT " } else { "" })
            }
            Expr::ScalarSubquery(q) => write!(f, "({q})"),
            Expr::IsNull { expr, negated } => {
                expr.fmt_prec(f, 3)?;
                write!(f, " IS {}NULL", if *negated { "NOT " } else { "" })
            }
        }
    }
}

/// One projected item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectItem {
    pub expr: Expr,
    pub alias: Option<String>,
}

impl SelectItem {
    pub fn plain(expr: Expr) -> Self {
        SelectItem { expr, alias: None }
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr)?;
        if let Some(a) = &self.alias {
            write!(f, " AS {a}")?;
        }
        Ok(())
    }
}

/// A base table in FROM (no aliases: generators always qualify by table
/// name, which keeps exact-match evaluation free of alias-equivalence
/// noise — the survey's Table 3 calls out aliasing as the key weakness of
/// string metrics, which we study in `nli-metrics::meta` instead).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableRef {
    pub name: String,
}

/// An explicit equi-join condition `left = right`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinCond {
    pub left: ColName,
    pub right: ColName,
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderItem {
    pub expr: Expr,
    pub desc: bool,
}

impl fmt::Display for OrderItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}",
            self.expr,
            if self.desc { " DESC" } else { " ASC" }
        )
    }
}

/// Set operators combining two SELECTs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SetOp {
    Union,
    Intersect,
    Except,
}

impl SetOp {
    pub fn name(self) -> &'static str {
        match self {
            SetOp::Union => "UNION",
            SetOp::Intersect => "INTERSECT",
            SetOp::Except => "EXCEPT",
        }
    }
}

/// A single SELECT block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Select {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    /// Equi-join conditions chaining the FROM tables (rendered as
    /// `JOIN ... ON ...`).
    pub joins: Vec<JoinCond>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<u64>,
}

impl Select {
    /// A minimal `SELECT <items> FROM <table>`.
    pub fn simple(table: &str, items: Vec<SelectItem>) -> Self {
        Select {
            distinct: false,
            items,
            from: vec![TableRef {
                name: table.to_lowercase(),
            }],
            joins: Vec::new(),
            where_clause: None,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{item}")?;
        }
        f.write_str(" FROM ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i == 0 {
                f.write_str(&t.name)?;
            } else {
                write!(f, " JOIN {}", t.name)?;
                if let Some(j) = self.joins.get(i - 1) {
                    write!(f, " ON {} = {}", j.left, j.right)?;
                }
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            f.write_str(" GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            f.write_str(" ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{o}")?;
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        Ok(())
    }
}

/// A full query: a SELECT optionally combined with another query by a set
/// operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    pub select: Select,
    pub compound: Option<(SetOp, Box<Query>)>,
}

impl Query {
    pub fn single(select: Select) -> Self {
        Query {
            select,
            compound: None,
        }
    }

    /// All table names mentioned in FROM clauses, recursively (subqueries in
    /// expressions included), deduplicated in first-mention order.
    pub fn tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        let mut seen = std::collections::HashSet::new();
        out.retain(|t| seen.insert(t.clone()));
        out
    }

    fn collect_tables(&self, out: &mut Vec<String>) {
        for t in &self.select.from {
            out.push(t.name.clone());
        }
        let mut exprs: Vec<&Expr> = Vec::new();
        if let Some(w) = &self.select.where_clause {
            exprs.push(w);
        }
        if let Some(h) = &self.select.having {
            exprs.push(h);
        }
        while let Some(e) = exprs.pop() {
            match e {
                Expr::InSubquery { query, expr, .. } => {
                    query.collect_tables(out);
                    exprs.push(expr);
                }
                Expr::ScalarSubquery(q) => q.collect_tables(out),
                Expr::Binary { left, right, .. } => {
                    exprs.push(left);
                    exprs.push(right);
                }
                Expr::Not(inner) => exprs.push(inner),
                Expr::Between {
                    expr, low, high, ..
                } => {
                    exprs.push(expr);
                    exprs.push(low);
                    exprs.push(high);
                }
                _ => {}
            }
        }
        if let Some((_, q)) = &self.compound {
            q.collect_tables(out);
        }
    }

    /// Structural complexity in the Spider hardness spirit: counts of
    /// joins, aggregates, nesting, set ops etc., used by dataset generators
    /// and reporting.
    pub fn complexity(&self) -> u32 {
        let s = &self.select;
        let mut score = 0;
        score += (s.from.len() as u32).saturating_sub(1) * 2; // joins
        score += s.group_by.len() as u32;
        score += u32::from(s.having.is_some()) * 2;
        score += u32::from(!s.order_by.is_empty());
        score += u32::from(s.limit.is_some());
        if let Some(w) = &s.where_clause {
            score += count_predicates(w);
            score += count_subqueries(w) * 3;
        }
        if self.compound.is_some() {
            score += 4;
        }
        score
    }
}

fn count_predicates(e: &Expr) -> u32 {
    match e {
        Expr::Binary {
            left,
            op: BinOp::And | BinOp::Or,
            right,
        } => count_predicates(left) + count_predicates(right),
        _ => 1,
    }
}

fn count_subqueries(e: &Expr) -> u32 {
    match e {
        Expr::Binary { left, right, .. } => count_subqueries(left) + count_subqueries(right),
        Expr::Not(inner) => count_subqueries(inner),
        Expr::InSubquery { .. } | Expr::ScalarSubquery(_) => 1,
        _ => 0,
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.select)?;
        if let Some((op, rhs)) = &self.compound {
            write!(f, " {} {}", op.name(), rhs)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_rendering_of_simple_query() {
        let mut s = Select::simple("singer", vec![SelectItem::plain(Expr::col("name"))]);
        s.where_clause = Some(Expr::binary(Expr::col("age"), BinOp::Gt, Expr::lit(30i64)));
        s.order_by = vec![OrderItem {
            expr: Expr::col("age"),
            desc: true,
        }];
        s.limit = Some(3);
        let q = Query::single(s);
        assert_eq!(
            q.to_string(),
            "SELECT name FROM singer WHERE age > 30 ORDER BY age DESC LIMIT 3"
        );
    }

    #[test]
    fn join_rendering() {
        let mut s = Select::simple(
            "sales",
            vec![SelectItem::plain(Expr::qcol("products", "name"))],
        );
        s.from.push(TableRef {
            name: "products".into(),
        });
        s.joins.push(JoinCond {
            left: ColName::qualified("sales", "product_id"),
            right: ColName::qualified("products", "id"),
        });
        let q = Query::single(s);
        assert_eq!(
            q.to_string(),
            "SELECT products.name FROM sales JOIN products ON sales.product_id = products.id"
        );
    }

    #[test]
    fn string_literals_are_quoted_and_escaped() {
        let e = Expr::binary(Expr::col("name"), BinOp::Eq, Expr::lit("O'Brien"));
        assert_eq!(e.to_string(), "name = 'O''Brien'");
    }

    #[test]
    fn boolean_precedence_parenthesizes_or_under_and() {
        let or = Expr::binary(
            Expr::binary(Expr::col("a"), BinOp::Eq, Expr::lit(1i64)),
            BinOp::Or,
            Expr::binary(Expr::col("b"), BinOp::Eq, Expr::lit(2i64)),
        );
        let and = Expr::binary(
            or,
            BinOp::And,
            Expr::binary(Expr::col("c"), BinOp::Eq, Expr::lit(3i64)),
        );
        assert_eq!(and.to_string(), "(a = 1 OR b = 2) AND c = 3");
    }

    #[test]
    fn count_distinct_rendering() {
        let e = Expr::Agg {
            func: AggFunc::Count,
            arg: Box::new(Expr::col("city")),
            distinct: true,
        };
        assert_eq!(e.to_string(), "COUNT(DISTINCT city)");
        assert_eq!(Expr::count_star().to_string(), "COUNT(*)");
    }

    #[test]
    fn set_op_rendering() {
        let a = Query::single(Select::simple("a", vec![SelectItem::plain(Expr::col("x"))]));
        let b = Query::single(Select::simple("b", vec![SelectItem::plain(Expr::col("x"))]));
        let q = Query {
            select: a.select,
            compound: Some((SetOp::Except, Box::new(b))),
        };
        assert_eq!(q.to_string(), "SELECT x FROM a EXCEPT SELECT x FROM b");
    }

    #[test]
    fn tables_recurse_into_subqueries() {
        let inner = Query::single(Select::simple(
            "concert",
            vec![SelectItem::plain(Expr::col("singer_id"))],
        ));
        let mut s = Select::simple("singer", vec![SelectItem::plain(Expr::col("name"))]);
        s.where_clause = Some(Expr::InSubquery {
            expr: Box::new(Expr::col("id")),
            query: Box::new(inner),
            negated: true,
        });
        let q = Query::single(s);
        assert_eq!(
            q.tables(),
            vec!["singer".to_string(), "concert".to_string()]
        );
    }

    #[test]
    fn complexity_orders_queries_sensibly() {
        let simple = Query::single(Select::simple("t", vec![SelectItem::plain(Expr::col("a"))]));
        let mut s = Select::simple("t", vec![SelectItem::plain(Expr::count_star())]);
        s.from.push(TableRef { name: "u".into() });
        s.joins.push(JoinCond {
            left: ColName::qualified("t", "id"),
            right: ColName::qualified("u", "t_id"),
        });
        s.group_by = vec![Expr::col("a")];
        s.having = Some(Expr::binary(Expr::count_star(), BinOp::Gt, Expr::lit(2i64)));
        let complex = Query::single(s);
        assert!(complex.complexity() > simple.complexity());
    }

    #[test]
    fn contains_aggregate_detects_nesting() {
        let e = Expr::binary(Expr::count_star(), BinOp::Gt, Expr::lit(2i64));
        assert!(e.contains_aggregate());
        assert!(!Expr::col("a").contains_aggregate());
    }

    #[test]
    fn rewrite_constructors_round_trip_through_the_parser() {
        let p = Expr::and(
            Expr::or(
                Expr::binary(Expr::col("a"), BinOp::Eq, Expr::lit(1i64)),
                Expr::is_null(Expr::col("b")),
            ),
            Expr::not(Expr::binary(Expr::col("c"), BinOp::Gt, Expr::lit(2i64))),
        );
        let mut s = Select::simple("t", vec![SelectItem::plain(Expr::col("a"))]);
        s.where_clause = Some(p);
        let q = Query::single(s);
        let reparsed = crate::parser::parse_query(&q.to_string()).unwrap();
        assert_eq!(q, reparsed, "printed form: {q}");
    }

    #[test]
    fn columns_collects_all_references() {
        let e = Expr::Between {
            expr: Box::new(Expr::col("a")),
            low: Box::new(Expr::col("b")),
            high: Box::new(Expr::lit(3i64)),
            negated: false,
        };
        let cols: Vec<String> = e.columns().iter().map(|c| c.column.clone()).collect();
        assert_eq!(cols, vec!["a", "b"]);
    }
}
