//! `EXPLAIN` / `EXPLAIN ANALYZE` for prepared statements.
//!
//! The crate-private `render_plan` pretty-prints a compiled [`QueryPlan`] as an indented
//! operator tree (executor order, root first): `Limit` > `Distinct` >
//! `Sort` > `Aggregate`/`Project` > `Filter` > the left-deep join chain >
//! `Scan` leaves, with set operations as an extra root. The text is a pure
//! function of the plan — offsets are printed back as column names via
//! [`SelectPlan::joined_columns`] — so the output is stable across runs and
//! suitable for golden tests (`tests/golden/explain_*`).
//!
//! `EXPLAIN ANALYZE` reuses the same tree and annotates every operator with
//! the [`OpStats`] collected by the instrumented execution path: rows
//! in/out, batches, operator-specific counters (hash-build keys, groups,
//! HAVING rejections, ...) and wall-clock µs. Row counts and counters are
//! deterministic (byte-identical across worker counts — pinned by
//! `tests/obs_determinism.rs`); timings are not, so [`AnalyzedSql::render`]
//! omits them and [`AnalyzedSql::render_with_timings`] opts in.

use crate::ast::SetOp;
use crate::exec::ResultSet;
use crate::plan::{BuildSide, JoinKind, PlanExpr, QueryPlan, ScanNode, SelectPlan};
use nli_core::Value;
use std::sync::Arc;

/// Per-operator execution statistics, collected only when a plan runs under
/// the instrumented path ([`crate::PreparedSql::explain_analyze`]); the
/// normal hot path carries a single `Option` check per operator, not per
/// row.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Rows entering the operator (for joins: prefix rows + new-table rows).
    pub rows_in: u64,
    /// Rows leaving the operator.
    pub rows_out: u64,
    /// Evaluation chunks the operator's input was processed in (input rows
    /// divided by the vectorized executor's batch size, minimum 1).
    /// Operators that work on a materialized whole (sort, distinct, limit,
    /// set ops) report `1`.
    pub batches: u64,
    /// Wall-clock time inside the operator, µs (monotonic clock;
    /// non-deterministic).
    pub wall_micros: u64,
    /// Operator-specific counters (hash-build keys, groups, ...), sorted by
    /// name at render time.
    pub counters: Vec<(&'static str, u64)>,
}

impl OpStats {
    pub(crate) fn flow(rows_in: usize, rows_out: usize) -> OpStats {
        OpStats {
            rows_in: rows_in as u64,
            rows_out: rows_out as u64,
            batches: 1,
            ..OpStats::default()
        }
    }
}

/// Stats for one executed SELECT block, slot-per-operator; `None` means the
/// plan had no such operator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SelectProfile {
    /// One entry per [`SelectPlan::scans`] node, in order.
    pub scans: Vec<OpStats>,
    /// One entry per [`SelectPlan::joins`] step, in order.
    pub joins: Vec<OpStats>,
    pub residual: Option<OpStats>,
    pub aggregate: Option<OpStats>,
    pub project: Option<OpStats>,
    pub sort: Option<OpStats>,
    pub distinct: Option<OpStats>,
    pub limit: Option<OpStats>,
}

/// Stats for a whole executed query: the SELECT block, the optional set
/// operator joining it to a compound right-hand side, and that side's own
/// profile.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanProfile {
    pub select: SelectProfile,
    pub set_op: Option<OpStats>,
    pub compound: Option<Box<PlanProfile>>,
}

impl PlanProfile {
    /// Visit every collected operator stat, labelled by operator kind. The
    /// bench baseline emitter aggregates over this.
    pub fn each_op(&self, f: &mut impl FnMut(&'static str, &OpStats)) {
        for s in &self.select.scans {
            f("scan", s);
        }
        for s in &self.select.joins {
            f("join", s);
        }
        let slots = [
            ("filter", &self.select.residual),
            ("aggregate", &self.select.aggregate),
            ("project", &self.select.project),
            ("sort", &self.select.sort),
            ("distinct", &self.select.distinct),
            ("limit", &self.select.limit),
        ];
        for (label, slot) in slots {
            if let Some(s) = slot {
                f(label, s);
            }
        }
        if let Some(s) = &self.set_op {
            f("set_op", s);
        }
        if let Some(c) = &self.compound {
            c.each_op(f);
        }
    }
}

/// The outcome of [`crate::PreparedSql::explain_analyze`]: the result set
/// plus the instrumented plan, renderable as an annotated operator tree.
#[derive(Debug, Clone)]
pub struct AnalyzedSql {
    pub(crate) plan: Arc<QueryPlan>,
    /// Per-operator stats collected during this execution.
    pub profile: PlanProfile,
    /// The query result (identical to what [`crate::PreparedSql::execute`]
    /// returns).
    pub result: ResultSet,
}

impl AnalyzedSql {
    /// The analyzed plan.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// Deterministic annotated tree: rows in/out, batches, and operator
    /// counters, *without* wall-clock timings. Byte-identical across runs
    /// and worker counts for the same query + database.
    pub fn render(&self) -> String {
        render_plan(&self.plan, Some(&self.profile), false)
    }

    /// Like [`AnalyzedSql::render`] plus `time=..us` per operator.
    /// Non-deterministic; for human eyes, not for golden tests.
    pub fn render_with_timings(&self) -> String {
        render_plan(&self.plan, Some(&self.profile), true)
    }
}

/// Render a plan as an indented operator tree; with `prof`, annotate each
/// operator with its stats (plus timings when `timings`).
pub(crate) fn render_plan(plan: &QueryPlan, prof: Option<&PlanProfile>, timings: bool) -> String {
    let mut out = String::new();
    render_query(&mut out, plan, prof, 0, timings);
    out
}

fn render_query(
    out: &mut String,
    plan: &QueryPlan,
    prof: Option<&PlanProfile>,
    depth: usize,
    timings: bool,
) {
    match &plan.compound {
        Some((op, rhs)) => {
            let label = match op {
                SetOp::Union => "Union",
                SetOp::Intersect => "Intersect",
                SetOp::Except => "Except",
            };
            line(
                out,
                depth,
                label.to_string(),
                prof.and_then(|p| p.set_op.as_ref()),
                timings,
            );
            render_select(
                out,
                &plan.select,
                prof.map(|p| &p.select),
                depth + 1,
                timings,
            );
            render_query(
                out,
                rhs,
                prof.and_then(|p| p.compound.as_deref()),
                depth + 1,
                timings,
            );
        }
        None => render_select(out, &plan.select, prof.map(|p| &p.select), depth, timings),
    }
}

fn render_select(
    out: &mut String,
    p: &SelectPlan,
    prof: Option<&SelectProfile>,
    mut depth: usize,
    timings: bool,
) {
    let names = &p.joined_columns;
    if let Some(l) = p.limit {
        line(
            out,
            depth,
            format!("Limit {l}"),
            prof.and_then(|s| s.limit.as_ref()),
            timings,
        );
        depth += 1;
    }
    if p.distinct {
        line(
            out,
            depth,
            "Distinct".to_string(),
            prof.and_then(|s| s.distinct.as_ref()),
            timings,
        );
        depth += 1;
    }
    if !p.order_by.is_empty() {
        let keys: Vec<String> = p
            .order_by
            .iter()
            .map(|k| {
                format!(
                    "{} {}",
                    expr_str(&k.expr, names, 0),
                    if k.desc { "DESC" } else { "ASC" }
                )
            })
            .collect();
        line(
            out,
            depth,
            format!("Sort [{}]", keys.join(", ")),
            prof.and_then(|s| s.sort.as_ref()),
            timings,
        );
        depth += 1;
    }
    if p.aggregate {
        let mut label = String::from("Aggregate");
        if !p.group_by.is_empty() {
            let keys: Vec<String> = p.group_by.iter().map(|g| expr_str(g, names, 0)).collect();
            label.push_str(&format!(" group_by=[{}]", keys.join(", ")));
        }
        let items: Vec<String> = p.items.iter().map(|i| expr_str(i, names, 0)).collect();
        label.push_str(&format!(" items=[{}]", items.join(", ")));
        if let Some(h) = &p.having {
            label.push_str(&format!(" having={}", expr_str(h, names, 0)));
        }
        line(
            out,
            depth,
            label,
            prof.and_then(|s| s.aggregate.as_ref()),
            timings,
        );
        depth += 1;
    } else {
        let label = if p.star {
            format!("Project * (arity={})", p.columns.len())
        } else {
            let items: Vec<String> = p.items.iter().map(|i| expr_str(i, names, 0)).collect();
            format!("Project [{}]", items.join(", "))
        };
        line(
            out,
            depth,
            label,
            prof.and_then(|s| s.project.as_ref()),
            timings,
        );
        depth += 1;
    }
    if let Some(r) = &p.residual {
        line(
            out,
            depth,
            format!("Filter {}", expr_str(r, names, 0)),
            prof.and_then(|s| s.residual.as_ref()),
            timings,
        );
        depth += 1;
    }
    render_joins(out, p, prof, p.joins.len(), depth, timings);
}

/// Render the left-deep join chain rooted at join step `k - 1` (the subtree
/// covering execution steps `0..=k`); `k == 0` is the bare first scan.
/// The tree follows [`SelectPlan::exec_order`]: step `k - 1` attaches FROM
/// entry `exec_order[k]`, so a cost-reordered plan prints in the order it
/// actually executes.
fn render_joins(
    out: &mut String,
    p: &SelectPlan,
    prof: Option<&SelectProfile>,
    k: usize,
    depth: usize,
    timings: bool,
) {
    if k == 0 {
        match p.exec_order.first().map(|&e| (e, &p.scans[e])) {
            Some((e, node)) => render_scan(
                out,
                p,
                node,
                prof.and_then(|s| s.scans.get(e)),
                depth,
                timings,
            ),
            None => line(out, depth, "Empty".to_string(), None, timings),
        }
        return;
    }
    let step = &p.joins[k - 1];
    let build_entry = p.exec_order[k];
    let build_scan = &p.scans[build_entry];
    let key_names = |probe_off: usize, build_col: usize| {
        let probe = name_at(&p.joined_columns, probe_off).to_string();
        let build = name_at(&p.joined_columns, build_scan.offset + build_col);
        let build = if build.contains('.') {
            build.to_string()
        } else {
            format!("{}.{build}", build_scan.table_name)
        };
        (probe, build)
    };
    let mut label = match step.kind {
        JoinKind::Hash {
            probe_off,
            build_col,
            build_side,
        } => {
            let (probe, build) = key_names(probe_off, build_col);
            let mut s = format!("HashJoin ({probe} = {build})");
            if build_side == BuildSide::Prefix {
                s.push_str(" [build=prefix]");
            }
            s
        }
        JoinKind::Merge {
            probe_off,
            build_col,
        } => {
            let (probe, build) = key_names(probe_off, build_col);
            format!("MergeJoin ({probe} = {build})")
        }
        JoinKind::Cross => "CrossJoin".to_string(),
    };
    if let Some(est) = step.est_rows {
        label.push_str(&format!(" est={est}"));
    }
    line(
        out,
        depth,
        label,
        prof.and_then(|s| s.joins.get(k - 1)),
        timings,
    );
    render_joins(out, p, prof, k - 1, depth + 1, timings);
    render_scan(
        out,
        p,
        build_scan,
        prof.and_then(|s| s.scans.get(build_entry)),
        depth + 1,
        timings,
    );
}

fn render_scan(
    out: &mut String,
    p: &SelectPlan,
    node: &ScanNode,
    st: Option<&OpStats>,
    depth: usize,
    timings: bool,
) {
    let mut label = format!("Scan {} (cols={}", node.table_name, node.width);
    if let Some(f) = &node.filter {
        // Pushed-down filters use table-local offsets; rebase onto the
        // joined-row names via the scan's offset.
        label.push_str(&format!(
            ", filter={}",
            expr_str(f, &p.joined_columns, node.offset)
        ));
    }
    if let Some(est) = node.est_rows {
        label.push_str(&format!(", est={est}"));
    }
    label.push(')');
    line(out, depth, label, st, timings);
}

fn line(out: &mut String, depth: usize, label: String, st: Option<&OpStats>, timings: bool) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(&label);
    if let Some(st) = st {
        out.push_str(&format!(
            " {{rows_in={} rows_out={} batches={}",
            st.rows_in, st.rows_out, st.batches
        ));
        let mut counters = st.counters.clone();
        counters.sort_unstable();
        for (name, v) in counters {
            out.push_str(&format!(" {name}={v}"));
        }
        if timings {
            out.push_str(&format!(" time={}us", st.wall_micros));
        }
        out.push('}');
    }
    out.push('\n');
}

fn name_at(names: &[String], offset: usize) -> &str {
    names.get(offset).map(String::as_str).unwrap_or("?")
}

fn literal_str(v: &Value) -> String {
    match v {
        Value::Text(_) | Value::Date(_) => format!("'{}'", v.canonical()),
        other => other.canonical(),
    }
}

/// Print a bound expression with offsets resolved back to column names.
/// `base` rebases table-local offsets (pushed-down scan filters) onto the
/// joined row.
pub(crate) fn expr_str(e: &PlanExpr, names: &[String], base: usize) -> String {
    match e {
        PlanExpr::Col(o) => name_at(names, base + o).to_string(),
        PlanExpr::Literal(v) => literal_str(v),
        PlanExpr::Star => "*".to_string(),
        PlanExpr::Agg {
            func,
            arg,
            distinct,
        } => format!(
            "{}({}{})",
            func.name(),
            if *distinct { "DISTINCT " } else { "" },
            expr_str(arg, names, base)
        ),
        PlanExpr::Binary { left, op, right } => {
            let paren = |side: &PlanExpr| {
                let s = expr_str(side, names, base);
                if matches!(side, PlanExpr::Binary { .. }) {
                    format!("({s})")
                } else {
                    s
                }
            };
            format!("{} {} {}", paren(left), op.symbol(), paren(right))
        }
        PlanExpr::Not(inner) => format!("NOT ({})", expr_str(inner, names, base)),
        PlanExpr::Like {
            expr,
            pattern,
            negated,
        } => format!(
            "{}{} LIKE '{pattern}'",
            expr_str(expr, names, base),
            if *negated { " NOT" } else { "" }
        ),
        PlanExpr::Between {
            expr,
            low,
            high,
            negated,
        } => format!(
            "{}{} BETWEEN {} AND {}",
            expr_str(expr, names, base),
            if *negated { " NOT" } else { "" },
            expr_str(low, names, base),
            expr_str(high, names, base)
        ),
        PlanExpr::InList {
            expr,
            list,
            negated,
        } => {
            let vals: Vec<String> = list.iter().map(literal_str).collect();
            format!(
                "{}{} IN ({})",
                expr_str(expr, names, base),
                if *negated { " NOT" } else { "" },
                vals.join(", ")
            )
        }
        PlanExpr::InPlan { expr, negated, .. } => format!(
            "{}{} IN (<subquery>)",
            expr_str(expr, names, base),
            if *negated { " NOT" } else { "" }
        ),
        PlanExpr::ScalarPlan(_) => "<subquery>".to_string(),
        PlanExpr::IsNull { expr, negated } => format!(
            "{} IS{} NULL",
            expr_str(expr, names, base),
            if *negated { " NOT" } else { "" }
        ),
    }
}

#[cfg(test)]
mod tests {
    use crate::exec::SqlEngine;
    use nli_core::{Column, DataType, Database, Schema, Table, Value};

    /// Three joinable tables: stores, products, sales (FKs from sales).
    fn retail_db() -> Database {
        let mut schema = Schema::new(
            "retail",
            vec![
                Table::new(
                    "stores",
                    vec![
                        Column::new("id", DataType::Int).primary(),
                        Column::new("city", DataType::Text),
                    ],
                ),
                Table::new(
                    "products",
                    vec![
                        Column::new("id", DataType::Int).primary(),
                        Column::new("category", DataType::Text),
                        Column::new("price", DataType::Float),
                    ],
                ),
                Table::new(
                    "sales",
                    vec![
                        Column::new("id", DataType::Int).primary(),
                        Column::new("store_id", DataType::Int),
                        Column::new("product_id", DataType::Int),
                        Column::new("amount", DataType::Float),
                    ],
                ),
            ],
        );
        schema
            .add_foreign_key("sales", "store_id", "stores", "id")
            .unwrap();
        schema
            .add_foreign_key("sales", "product_id", "products", "id")
            .unwrap();
        let mut db = Database::empty(schema);
        db.insert_all(
            "stores",
            vec![
                vec![1.into(), "Oslo".into()],
                vec![2.into(), "Bergen".into()],
            ],
        )
        .unwrap();
        db.insert_all(
            "products",
            vec![
                vec![1.into(), "Tools".into(), 9.5.into()],
                vec![2.into(), "Tools".into(), 19.0.into()],
                vec![3.into(), "Toys".into(), 4.25.into()],
            ],
        )
        .unwrap();
        db.insert_all(
            "sales",
            vec![
                vec![1.into(), 1.into(), 1.into(), 100.0.into()],
                vec![2.into(), 1.into(), 2.into(), 200.0.into()],
                vec![3.into(), 2.into(), 2.into(), 150.0.into()],
                vec![4.into(), 2.into(), 3.into(), 50.0.into()],
                vec![5.into(), Value::Null, 1.into(), 75.0.into()],
            ],
        )
        .unwrap();
        db
    }

    const THREE_WAY: &str = "SELECT stores.city, SUM(sales.amount) FROM sales \
         JOIN stores ON sales.store_id = stores.id \
         JOIN products ON sales.product_id = products.id \
         WHERE products.price > 5 GROUP BY stores.city \
         ORDER BY SUM(sales.amount) DESC";

    #[test]
    fn explain_renders_the_full_operator_tree() {
        let engine = SqlEngine::new();
        let stmt = engine.prepare(THREE_WAY, &retail_db().schema).unwrap();
        let text = stmt.explain();
        for needle in [
            "Sort [SUM(amount) DESC]",
            "Aggregate group_by=[city] items=[city, SUM(amount)]",
            "HashJoin (store_id = stores.id)",
            "HashJoin (product_id = products.id)",
            "Scan sales (cols=4)",
            "Scan stores (cols=2)",
            "Scan products (cols=3, filter=price > 5)",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // The pushed-down filter must not survive as a residual Filter node.
        assert!(!text.contains("\nFilter"), "unexpected residual:\n{text}");
    }

    #[test]
    fn explain_analyze_reports_per_operator_row_counts() {
        let db = retail_db();
        let engine = SqlEngine::new();
        let stmt = engine.prepare(THREE_WAY, &db.schema).unwrap();
        let analyzed = stmt.explain_analyze(&db).unwrap();

        // The result is exactly what plain execute produces.
        assert!(analyzed.result.same_result(&stmt.execute(&db).unwrap()));

        let p = &analyzed.profile.select;
        assert_eq!(p.scans.len(), 3);
        // sales scan: unfiltered, 5 rows in and out.
        assert_eq!((p.scans[0].rows_in, p.scans[0].rows_out), (5, 5));
        // products scan: price > 5 drops one of three.
        assert_eq!((p.scans[2].rows_in, p.scans[2].rows_out), (3, 2));
        // first join: 5 sales + 2 stores in, the NULL store_id row drops.
        assert_eq!(p.joins.len(), 2);
        assert_eq!((p.joins[0].rows_in, p.joins[0].rows_out), (7, 4));
        assert!(p.joins[0].counters.contains(&("build_keys", 2)));
        // second join: 4 + 2 in, the Toys sale (price 4.25) drops.
        assert_eq!((p.joins[1].rows_in, p.joins[1].rows_out), (6, 3));
        let agg = p.aggregate.as_ref().unwrap();
        assert_eq!((agg.rows_in, agg.rows_out), (3, 2));
        assert!(agg.counters.contains(&("groups", 2)));
        assert_eq!(p.sort.as_ref().unwrap().rows_out, 2);
        assert!(p.residual.is_none(), "filter was pushed below the joins");

        // Deterministic render: a second instrumented run is byte-identical.
        let again = stmt.explain_analyze(&db).unwrap();
        assert_eq!(analyzed.render(), again.render());
        // ...and the timed render only adds time=..us annotations.
        let timed = analyzed.render_with_timings();
        assert_eq!(timed.replace(" time=", "#").matches('#').count(), {
            let mut n = 0;
            analyzed.profile.each_op(&mut |_, _| n += 1);
            n
        });
    }

    #[test]
    fn explain_analyze_covers_set_ops_and_compound_profiles() {
        let db = retail_db();
        let engine = SqlEngine::new();
        let stmt = engine
            .prepare(
                "SELECT id FROM products UNION SELECT product_id FROM sales",
                &db.schema,
            )
            .unwrap();
        let analyzed = stmt.explain_analyze(&db).unwrap();
        let set = analyzed.profile.set_op.as_ref().unwrap();
        assert_eq!((set.rows_in, set.rows_out), (8, 3));
        let rhs = analyzed.profile.compound.as_ref().unwrap();
        assert_eq!(rhs.select.scans[0].rows_out, 5);
        assert!(analyzed.render().starts_with("Union {rows_in=8 rows_out=3"));
    }
}
