//! Canonical SQL normalization for string-based evaluation.
//!
//! Exact-string-match evaluation is notoriously sensitive to inessential
//! spelling differences (case, whitespace, `<>` vs `!=`, comma-FROM vs
//! JOIN). Normalization removes exactly that class of noise — parse the
//! query and reprint it canonically — while *preserving* genuine semantic
//! differences, which is what Table 3's metric comparison needs.

use crate::parser::parse_query;

/// Normalize SQL to the workspace's canonical spelling. When the input does
/// not parse (e.g. a hallucinated program from a noisy model), falls back to
/// lossy token normalization so metrics still get a comparable string.
pub fn normalize(sql: &str) -> String {
    match parse_query(sql) {
        Ok(q) => q.to_string(),
        Err(_) => lossy_normalize(sql),
    }
}

/// Whitespace/case-only normalization used for unparseable strings.
fn lossy_normalize(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut in_string = false;
    let mut last_space = true;
    for c in sql.chars() {
        if c == '\'' {
            in_string = !in_string;
            out.push(c);
            last_space = false;
        } else if in_string {
            out.push(c);
        } else if c.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            out.push(c.to_ascii_lowercase());
            last_space = false;
        }
    }
    out.trim().to_string()
}

/// Whether two SQL strings are equal after normalization.
pub fn normalized_eq(a: &str, b: &str) -> bool {
    normalize(a) == normalize(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_and_whitespace_are_ignored() {
        assert!(normalized_eq(
            "select  name from   singer where age>30",
            "SELECT name FROM singer WHERE age > 30"
        ));
    }

    #[test]
    fn neq_spellings_unify() {
        assert!(normalized_eq(
            "SELECT a FROM t WHERE x <> 1",
            "SELECT a FROM t WHERE x != 1"
        ));
    }

    #[test]
    fn semantic_differences_survive() {
        assert!(!normalized_eq(
            "SELECT a FROM t WHERE x > 1",
            "SELECT a FROM t WHERE x >= 1"
        ));
        assert!(!normalized_eq("SELECT a FROM t", "SELECT b FROM t"));
    }

    #[test]
    fn unparseable_strings_get_lossy_treatment() {
        let n = normalize("SELEC whoops   FROM");
        assert_eq!(n, "selec whoops from");
    }

    #[test]
    fn string_literal_case_is_preserved() {
        let n = normalize("SELECT a FROM t WHERE name = 'Alice'");
        assert!(n.contains("'Alice'"));
        let lossy = lossy_normalize("BROKEN 'MiXeD Case'");
        assert!(lossy.contains("'MiXeD Case'"));
    }

    #[test]
    fn comma_from_normalizes_to_join_spelling() {
        let n = normalize("SELECT a FROM t, u WHERE t.id = u.t_id");
        assert!(n.contains("FROM t JOIN u"), "{n}");
    }
}
