//! # nli-sql
//!
//! The SQL side of the survey's problem definition: the functional
//! expression `e` is a [`ast::Query`], and the execution engine `E` is
//! [`exec::SqlEngine`], which evaluates queries on an in-memory
//! [`nli_core::Database`] to produce a [`exec::ResultSet`] `r`.
//!
//! Execution is a two-stage pipeline: [`plan::plan_query`] compiles a
//! parsed query against a [`nli_core::Schema`] into a logical
//! [`plan::QueryPlan`] (name resolution, hash-join extraction, predicate
//! pushdown), and [`exec`] runs plans against databases. [`exec::SqlEngine`]
//! fronts both stages with a schema-fingerprinted plan cache and implements
//! [`nli_core::PrepareEngine`], so one prepared statement can run across
//! many database variants that share a schema. The original tree-walking
//! interpreter survives in [`interp`] as the reference implementation for
//! differential testing.
//!
//! The dialect is the cross-domain benchmark subset (Spider-class):
//! `SELECT [DISTINCT] ... FROM ... [JOIN ... ON ...] [WHERE ...]
//! [GROUP BY ... [HAVING ...]] [ORDER BY ... [ASC|DESC]] [LIMIT n]` with
//! aggregates, arithmetic, `AND`/`OR`/`NOT`, `LIKE`, `BETWEEN`, `IN
//! (list|subquery)`, scalar subqueries, and `UNION`/`INTERSECT`/`EXCEPT`.
//! Uncorrelated subqueries only — the same restriction the Spider grammar
//! enforces in practice.
//!
//! Besides parsing and execution, the crate provides what *evaluation*
//! needs: a canonical printer ([`normalize::normalize`]) for exact-match
//! scoring and a Spider-style component decomposition
//! ([`components::decompose`]) for exact-set-match scoring.
//!
//! ## Example
//!
//! ```
//! use nli_core::{Column, DataType, Database, Schema, Table, Value};
//! use nli_sql::SqlEngine;
//!
//! let schema = Schema::new(
//!     "shop",
//!     vec![Table::new(
//!         "sales",
//!         vec![
//!             Column::new("id", DataType::Int).primary(),
//!             Column::new("amount", DataType::Float),
//!         ],
//!     )],
//! );
//! let mut db = Database::empty(schema.clone());
//! db.insert_all(
//!     "sales",
//!     vec![
//!         vec![Value::Int(1), Value::Float(10.0)],
//!         vec![Value::Int(2), Value::Float(30.0)],
//!     ],
//! )
//! .unwrap();
//!
//! // Prepare once (parse + plan, cached by schema fingerprint)...
//! let engine = SqlEngine::new();
//! let stmt = engine
//!     .prepare("SELECT COUNT(*) FROM sales WHERE amount > 15", &schema)
//!     .unwrap();
//! // ...then execute on any database sharing that schema.
//! let rs = stmt.execute(&db).unwrap();
//! assert_eq!(rs.rows, vec![vec![Value::Int(1)]]);
//! ```

pub mod ast;
pub mod components;
pub mod exec;
pub mod explain;
pub mod interp;
pub mod normalize;
pub mod parser;
pub mod plan;
pub mod token;
mod vexec;

pub use ast::{
    AggFunc, BinOp, ColName, Expr, JoinCond, OrderItem, Query, Select, SelectItem, SetOp, TableRef,
};
pub use components::{decompose, QueryComponents};
pub use exec::{CanonicalResult, PreparedSql, ResultSet, SqlEngine};
pub use explain::{AnalyzedSql, OpStats, PlanProfile, SelectProfile};
pub use normalize::normalize;
pub use parser::parse_query;
pub use plan::{plan_query, plan_query_with_stats, QueryPlan};
pub use vexec::with_batch_rows;
