//! The original tree-walking SQL interpreter, kept as a reference
//! implementation.
//!
//! This is the engine the plan-based pipeline in [`crate::plan`] /
//! [`crate::exec`] replaced: it resolves names per row against the
//! database's schema and walks the AST directly. It is retained verbatim
//! (minus the engine plumbing) for one purpose — differential testing. The
//! property suite executes generated queries through both engines and
//! requires identical results, which pins the planner's rewrites
//! (hash-join extraction, predicate pushdown, plan-time binding) to the
//! original semantics.
//!
//! Value-level semantics (`LIKE`, three-valued logic, arithmetic,
//! aggregation) are shared with the physical executor rather than
//! duplicated, so the two engines can only diverge in *query structure*
//! handling — exactly what the differential test is after.
//!
//! Known, accepted divergences of the plan pipeline from this reference:
//! name-resolution errors surface at plan time even when a table is empty
//! (the interpreter only resolves names while evaluating rows), and
//! pushed-down predicates may surface type errors on rows a join would
//! have discarded.

use crate::ast::{AggFunc, ColName, Expr, Query, Select};
use crate::exec::{apply_set_op, canonical_row, eval_binary, like_match, truthy, ResultSet};
use nli_core::{Database, NliError, Result, Value};
use std::cmp::Ordering;
use std::collections::HashMap;

/// Execute `q` with the reference tree-walking interpreter.
pub fn run_tree_walk(q: &Query, db: &Database) -> Result<ResultSet> {
    exec_query(q, db)
}

fn exec_query(q: &Query, db: &Database) -> Result<ResultSet> {
    let left = exec_select(&q.select, db)?;
    match &q.compound {
        Some((op, rhs)) => {
            let right = exec_query(rhs, db)?;
            apply_set_op(left, *op, right)
        }
        None => Ok(left),
    }
}

/// Binding environment: which tables are in scope and at which row offset.
struct Scope<'a> {
    db: &'a Database,
    /// `(table name, schema table index, column offset)` per FROM entry.
    bound: Vec<(String, usize, usize)>,
    width: usize,
}

impl<'a> Scope<'a> {
    fn bind(db: &'a Database, select: &Select) -> Result<Scope<'a>> {
        let mut bound = Vec::new();
        let mut offset = 0;
        for t in &select.from {
            let ti = db
                .schema
                .table_index(&t.name)
                .ok_or_else(|| NliError::UnknownTable(t.name.clone()))?;
            bound.push((t.name.to_lowercase(), ti, offset));
            offset += db.schema.tables[ti].columns.len();
        }
        Ok(Scope {
            db,
            bound,
            width: offset,
        })
    }

    /// Resolve a column name to an offset in the joined row.
    fn resolve(&self, c: &ColName) -> Result<usize> {
        match &c.table {
            Some(t) => {
                let (_, ti, off) = self
                    .bound
                    .iter()
                    .find(|(name, _, _)| name == &t.to_lowercase())
                    .ok_or_else(|| NliError::UnknownTable(t.clone()))?;
                let ci = self.db.schema.tables[*ti]
                    .column_index(&c.column)
                    .ok_or_else(|| NliError::UnknownColumn(format!("{t}.{}", c.column)))?;
                Ok(off + ci)
            }
            None => {
                let mut hit = None;
                for (_, ti, off) in &self.bound {
                    if let Some(ci) = self.db.schema.tables[*ti].column_index(&c.column) {
                        if hit.is_some() {
                            return Err(NliError::AmbiguousColumn(c.column.clone()));
                        }
                        hit = Some(off + ci);
                    }
                }
                hit.ok_or_else(|| NliError::UnknownColumn(c.column.clone()))
            }
        }
    }

    /// All column names in scope, qualified when a name is ambiguous.
    fn output_columns(&self) -> Vec<String> {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for (_, ti, _) in &self.bound {
            for c in &self.db.schema.tables[*ti].columns {
                *counts.entry(c.name.as_str()).or_insert(0) += 1;
            }
        }
        let mut out = Vec::with_capacity(self.width);
        for (name, ti, _) in &self.bound {
            for c in &self.db.schema.tables[*ti].columns {
                if counts[c.name.as_str()] > 1 {
                    out.push(format!("{name}.{}", c.name));
                } else {
                    out.push(c.name.clone());
                }
            }
        }
        out
    }
}

fn exec_select(select: &Select, db: &Database) -> Result<ResultSet> {
    let scope = Scope::bind(db, select)?;
    let mut rows = join_from(select, db, &scope)?;

    // Materialize subqueries in WHERE/HAVING so row evaluation is pure.
    let where_clause = select
        .where_clause
        .as_ref()
        .map(|w| materialize_subqueries(w, db))
        .transpose()?;
    let having = select
        .having
        .as_ref()
        .map(|h| materialize_subqueries(h, db))
        .transpose()?;

    if let Some(w) = &where_clause {
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            if truthy(&eval_scalar(w, &row, &scope)?) {
                kept.push(row);
            }
        }
        rows = kept;
    }

    let is_aggregate = !select.group_by.is_empty()
        || select.items.iter().any(|i| i.expr.contains_aggregate())
        || having.as_ref().is_some_and(|h| h.contains_aggregate());

    let mut out_columns: Vec<String> = Vec::new();
    let mut out_rows: Vec<Vec<Value>> = Vec::new();
    // Sort keys aligned with out_rows, computed in the right context.
    let mut sort_keys: Vec<Vec<Value>> = Vec::new();
    let need_sort = !select.order_by.is_empty();

    if is_aggregate {
        // Group rows by the GROUP BY key (single group when absent).
        let mut groups: Vec<(Vec<String>, Vec<Vec<Value>>)> = Vec::new();
        let mut index: HashMap<Vec<String>, usize> = HashMap::new();
        for row in rows {
            let mut key = Vec::with_capacity(select.group_by.len());
            for g in &select.group_by {
                key.push(eval_scalar(g, &row, &scope)?.canonical());
            }
            match index.get(&key) {
                Some(&gi) => groups[gi].1.push(row),
                None => {
                    index.insert(key.clone(), groups.len());
                    groups.push((key, vec![row]));
                }
            }
        }
        if groups.is_empty() && select.group_by.is_empty() {
            // Aggregates over an empty input still produce one row.
            groups.push((Vec::new(), Vec::new()));
        }
        for item in &select.items {
            out_columns.push(
                item.alias
                    .clone()
                    .unwrap_or_else(|| item.expr.to_string().to_lowercase()),
            );
        }
        for (_, grows) in &groups {
            if let Some(h) = &having {
                if !truthy(&eval_group(h, grows, &scope)?) {
                    continue;
                }
            }
            let mut out = Vec::with_capacity(select.items.len());
            for item in &select.items {
                out.push(eval_group(&item.expr, grows, &scope)?);
            }
            if need_sort {
                let mut keys = Vec::with_capacity(select.order_by.len());
                for o in &select.order_by {
                    keys.push(eval_group(&o.expr, grows, &scope)?);
                }
                sort_keys.push(keys);
            }
            out_rows.push(out);
        }
    } else {
        // Plain projection.
        let star = select.items.len() == 1 && matches!(select.items[0].expr, Expr::Star);
        if star {
            out_columns = scope.output_columns();
        } else {
            for item in &select.items {
                if matches!(item.expr, Expr::Star) {
                    return Err(NliError::Execution(
                        "`*` must be the only select item".into(),
                    ));
                }
                out_columns.push(
                    item.alias
                        .clone()
                        .unwrap_or_else(|| item.expr.to_string().to_lowercase()),
                );
            }
        }
        for row in rows {
            if need_sort {
                let mut keys = Vec::with_capacity(select.order_by.len());
                for o in &select.order_by {
                    keys.push(eval_scalar(&o.expr, &row, &scope)?);
                }
                sort_keys.push(keys);
            }
            if star {
                out_rows.push(row);
            } else {
                let mut out = Vec::with_capacity(select.items.len());
                for item in &select.items {
                    out.push(eval_scalar(&item.expr, &row, &scope)?);
                }
                out_rows.push(out);
            }
        }
    }

    if need_sort {
        let mut order: Vec<usize> = (0..out_rows.len()).collect();
        order.sort_by(|&a, &b| {
            for (o, (ka, kb)) in select
                .order_by
                .iter()
                .zip(sort_keys[a].iter().zip(sort_keys[b].iter()))
            {
                let c = ka.total_cmp(kb);
                let c = if o.desc { c.reverse() } else { c };
                if c != Ordering::Equal {
                    return c;
                }
            }
            Ordering::Equal
        });
        out_rows = order
            .into_iter()
            .map(|i| std::mem::take(&mut out_rows[i]))
            .collect();
    }

    if select.distinct {
        let mut seen = std::collections::HashSet::new();
        out_rows.retain(|r| seen.insert(canonical_row(r)));
    }

    if let Some(l) = select.limit {
        out_rows.truncate(l as usize);
    }

    Ok(ResultSet {
        columns: out_columns,
        rows: out_rows,
        ordered: need_sort,
    })
}

/// Build the joined row stream for the FROM clause. Explicit ON conditions
/// become hash joins; tables without a connecting condition are
/// cross-joined (their predicates, if any, live in WHERE).
fn join_from(select: &Select, db: &Database, scope: &Scope) -> Result<Vec<Vec<Value>>> {
    let mut rows: Vec<Vec<Value>> = db.rows(scope.bound[0].1).to_vec();
    let mut bound_width = db.schema.tables[scope.bound[0].1].columns.len();

    for (i, (_, ti, _)) in scope.bound.iter().enumerate().skip(1) {
        let new_rows = db.rows(*ti);
        let new_off = scope.bound[i].2;
        let new_width = db.schema.tables[*ti].columns.len();

        // Find a join condition connecting the new table to the bound part.
        let mut probe: Option<(usize, usize)> = None; // (bound offset, new-side column)
        for j in &select.joins {
            let l = scope.resolve(&j.left)?;
            let r = scope.resolve(&j.right)?;
            let (inner, outer) = if (new_off..new_off + new_width).contains(&l) {
                (l, r)
            } else if (new_off..new_off + new_width).contains(&r) {
                (r, l)
            } else {
                continue;
            };
            if outer < bound_width {
                probe = Some((outer, inner - new_off));
                break;
            }
        }

        let mut joined = Vec::new();
        match probe {
            Some((outer_off, inner_ci)) => {
                let mut table: HashMap<String, Vec<&Vec<Value>>> = HashMap::new();
                for nr in new_rows {
                    if nr[inner_ci].is_null() {
                        continue;
                    }
                    table.entry(nr[inner_ci].canonical()).or_default().push(nr);
                }
                for row in &rows {
                    let key = &row[outer_off];
                    if key.is_null() {
                        continue;
                    }
                    if let Some(matches) = table.get(&key.canonical()) {
                        for nr in matches {
                            let mut combined = row.clone();
                            combined.extend((*nr).clone());
                            joined.push(combined);
                        }
                    }
                }
            }
            None => {
                for row in &rows {
                    for nr in new_rows {
                        let mut combined = row.clone();
                        combined.extend(nr.clone());
                        joined.push(combined);
                    }
                }
            }
        }
        rows = joined;
        bound_width += new_width;
    }
    Ok(rows)
}

/// Replace uncorrelated subqueries with their materialized values.
fn materialize_subqueries(e: &Expr, db: &Database) -> Result<Expr> {
    Ok(match e {
        Expr::InSubquery {
            expr,
            query,
            negated,
        } => {
            let rs = exec_query(query, db)?;
            if rs.columns.len() != 1 && !rs.rows.is_empty() && rs.rows[0].len() != 1 {
                return Err(NliError::Execution(
                    "IN subquery must produce one column".into(),
                ));
            }
            let list = rs.rows.into_iter().filter_map(|mut r| {
                if r.is_empty() {
                    None
                } else {
                    Some(r.swap_remove(0))
                }
            });
            Expr::InList {
                expr: Box::new(materialize_subqueries(expr, db)?),
                list: list.collect(),
                negated: *negated,
            }
        }
        Expr::ScalarSubquery(q) => {
            let rs = exec_query(q, db)?;
            let v = rs
                .rows
                .first()
                .and_then(|r| r.first())
                .cloned()
                .unwrap_or(Value::Null);
            Expr::Literal(v)
        }
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(materialize_subqueries(left, db)?),
            op: *op,
            right: Box::new(materialize_subqueries(right, db)?),
        },
        Expr::Not(inner) => Expr::Not(Box::new(materialize_subqueries(inner, db)?)),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(materialize_subqueries(expr, db)?),
            low: Box::new(materialize_subqueries(low, db)?),
            high: Box::new(materialize_subqueries(high, db)?),
            negated: *negated,
        },
        other => other.clone(),
    })
}

/// Evaluate an expression in scalar (per-row) context.
fn eval_scalar(e: &Expr, row: &[Value], scope: &Scope) -> Result<Value> {
    match e {
        Expr::Column(c) => Ok(row[scope.resolve(c)?].clone()),
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Star => Err(NliError::Execution("`*` in scalar context".into())),
        Expr::Agg { .. } => Err(NliError::Execution(
            "aggregate in row context (missing GROUP BY?)".into(),
        )),
        Expr::Binary { left, op, right } => {
            let l = eval_scalar(left, row, scope)?;
            let r = eval_scalar(right, row, scope)?;
            eval_binary(&l, *op, &r)
        }
        Expr::Not(inner) => Ok(match eval_scalar(inner, row, scope)? {
            Value::Bool(b) => Value::Bool(!b),
            Value::Null => Value::Null,
            other => return Err(NliError::Execution(format!("NOT applied to {other}"))),
        }),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval_scalar(expr, row, scope)?;
            Ok(match v {
                Value::Null => Value::Null,
                Value::Text(s) => {
                    let m = like_match(pattern, &s);
                    Value::Bool(m != *negated)
                }
                other => {
                    // LIKE over non-text compares the canonical spelling,
                    // matching SQLite's affinity-light behaviour.
                    let m = like_match(pattern, &other.canonical());
                    Value::Bool(m != *negated)
                }
            })
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval_scalar(expr, row, scope)?;
            let lo = eval_scalar(low, row, scope)?;
            let hi = eval_scalar(high, row, scope)?;
            match (v.compare(&lo), v.compare(&hi)) {
                (Some(a), Some(b)) => {
                    let inside = a != Ordering::Less && b != Ordering::Greater;
                    Ok(Value::Bool(inside != *negated))
                }
                _ => Ok(Value::Null),
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_scalar(expr, row, scope)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let found = list.iter().any(|x| v.sql_eq(x) == Some(true));
            Ok(Value::Bool(found != *negated))
        }
        Expr::InSubquery { .. } | Expr::ScalarSubquery(_) => Err(NliError::Execution(
            "unmaterialized subquery reached evaluation".into(),
        )),
        Expr::IsNull { expr, negated } => {
            let v = eval_scalar(expr, row, scope)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
    }
}

/// Evaluate an expression in group context: aggregates consume the group's
/// rows; bare columns take the group's first row (SQLite-style).
fn eval_group(e: &Expr, rows: &[Vec<Value>], scope: &Scope) -> Result<Value> {
    match e {
        Expr::Agg {
            func,
            arg,
            distinct,
        } => eval_agg(*func, arg, *distinct, rows, scope),
        Expr::Binary { left, op, right } => {
            let l = eval_group(left, rows, scope)?;
            let r = eval_group(right, rows, scope)?;
            eval_binary(&l, *op, &r)
        }
        Expr::Not(inner) => Ok(match eval_group(inner, rows, scope)? {
            Value::Bool(b) => Value::Bool(!b),
            Value::Null => Value::Null,
            other => return Err(NliError::Execution(format!("NOT applied to {other}"))),
        }),
        other => match rows.first() {
            Some(first) => eval_scalar(other, first, scope),
            None => Ok(Value::Null),
        },
    }
}

fn eval_agg(
    func: AggFunc,
    arg: &Expr,
    distinct: bool,
    rows: &[Vec<Value>],
    scope: &Scope,
) -> Result<Value> {
    if matches!(arg, Expr::Star) {
        if func != AggFunc::Count {
            return Err(NliError::Execution(format!(
                "{}(*) is invalid",
                func.name()
            )));
        }
        return Ok(Value::Int(rows.len() as i64));
    }
    let mut vals = Vec::with_capacity(rows.len());
    for row in rows {
        let v = eval_scalar(arg, row, scope)?;
        if !v.is_null() {
            vals.push(v);
        }
    }
    if distinct {
        let mut seen = std::collections::HashSet::new();
        vals.retain(|v| seen.insert(v.canonical()));
    }
    Ok(match func {
        AggFunc::Count => Value::Int(vals.len() as i64),
        AggFunc::Sum | AggFunc::Avg => {
            if vals.is_empty() {
                Value::Null
            } else {
                let mut sum = 0.0;
                let mut all_int = true;
                for v in &vals {
                    match v {
                        Value::Int(i) => sum += *i as f64,
                        Value::Float(f) => {
                            sum += f;
                            all_int = false;
                        }
                        other => {
                            return Err(NliError::Execution(format!(
                                "{} over non-numeric value {other}",
                                func.name()
                            )))
                        }
                    }
                }
                if func == AggFunc::Avg {
                    Value::Float(sum / vals.len() as f64)
                } else if all_int {
                    Value::Int(sum as i64)
                } else {
                    Value::Float(sum)
                }
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<Value> = None;
            for v in vals {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let take_new = match v.compare(&b) {
                            Some(Ordering::Less) => func == AggFunc::Min,
                            Some(Ordering::Greater) => func == AggFunc::Max,
                            _ => false,
                        };
                        if take_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            best.unwrap_or(Value::Null)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::SqlEngine;
    use crate::parser::parse_query;
    use nli_core::{Column, DataType, Schema, Table};

    /// Sanity anchor: the reference interpreter and the plan pipeline agree
    /// on a query exercising join + aggregate + sort (the broad agreement
    /// guarantee lives in the differential property test).
    #[test]
    fn tree_walk_matches_plan_pipeline() {
        let mut schema = Schema::new(
            "shop",
            vec![
                Table::new(
                    "products",
                    vec![
                        Column::new("id", DataType::Int).primary(),
                        Column::new("name", DataType::Text),
                        Column::new("price", DataType::Float),
                    ],
                ),
                Table::new(
                    "sales",
                    vec![
                        Column::new("id", DataType::Int).primary(),
                        Column::new("product_id", DataType::Int),
                        Column::new("amount", DataType::Float),
                    ],
                ),
            ],
        );
        schema
            .add_foreign_key("sales", "product_id", "products", "id")
            .unwrap();
        let mut db = Database::empty(schema);
        db.insert_all(
            "products",
            vec![
                vec![1.into(), "Widget".into(), 9.5.into()],
                vec![2.into(), "Gadget".into(), 19.0.into()],
            ],
        )
        .unwrap();
        db.insert_all(
            "sales",
            vec![
                vec![1.into(), 1.into(), 100.0.into()],
                vec![2.into(), 2.into(), 150.0.into()],
                vec![3.into(), Value::Null, 75.0.into()],
            ],
        )
        .unwrap();

        let q = parse_query(
            "SELECT products.name, SUM(sales.amount) FROM sales, products \
             WHERE sales.product_id = products.id GROUP BY products.name \
             ORDER BY SUM(sales.amount) DESC",
        )
        .unwrap();
        let reference = run_tree_walk(&q, &db).unwrap();
        let planned = SqlEngine::new()
            .prepare_ast(&q, &db.schema)
            .unwrap()
            .execute(&db)
            .unwrap();
        assert_eq!(reference.columns, planned.columns);
        assert!(reference.same_result(&planned));
        assert_eq!(reference.rows, planned.rows);
    }
}
