//! Vectorized columnar execution of [`SelectPlan`]s.
//!
//! The executor runs over the database's cached columnar form
//! ([`nli_core::ColumnBatch`]) instead of cloning `Vec<Value>` rows:
//! intermediate state is a *selection vector* per FROM entry (base-row
//! indices), and expression evaluation happens in typed batch kernels
//! ([`VCol`]) over chunks of [`batch_rows`] positions.
//!
//! ## Conformance contract
//!
//! The tree-walk interpreter ([`crate::interp`]) and the legacy row
//! executor define the semantics; this module must match them *exactly* —
//! same rows, same row order, same errors — because the differential tests
//! and the fuzz oracle compare results bit-for-bit. Three rules make that
//! hold by construction:
//!
//! 1. **Kernels never error.** [`eval_vcol`] returns `None` whenever the
//!    row-at-a-time evaluator *could* error on any row of the chunk (or the
//!    expression is out of kernel scope), and the caller re-evaluates the
//!    whole chunk row-wise through [`crate::exec::eval_expr`] — reproducing
//!    the legacy error at the legacy row. Kernels only succeed on inputs
//!    where the legacy path cannot fail.
//! 2. **Join keys hash the legacy equality.** Typed `i64` keys are used
//!    only when both key columns are [`ColumnData::Int`]; every other
//!    combination falls back to [`Value::canonical`] string keys, which is
//!    precisely the equivalence the row executor hashed.
//! 3. **Row order is restored.** The legacy joined stream is ordered
//!    lexicographically by the tuple of per-FROM-entry base-row indices.
//!    When the cost-based `exec_order` (or a prefix-side hash build)
//!    perturbs that order, a final sort over those tuples restores it
//!    bit-exactly before the residual filter runs.
//!
//! Chunk size is [`DEFAULT_BATCH_ROWS`] rows, overridable per process with
//! `NLI_BATCH_ROWS` (read once) or per call tree with [`with_batch_rows`]
//! (used by the conformance property tests to exercise odd sizes).

use crate::ast::{AggFunc, BinOp};
use crate::exec::{self, ResultSet};
use crate::explain::{OpStats, SelectProfile};
use crate::plan::{BuildSide, JoinKind, PlanExpr, ScanNode, SelectPlan};
use nli_core::{obs, ColumnData, ColumnVector, Database, Date, Result, Value};
use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};
use std::sync::OnceLock;

/// Default number of positions per evaluation chunk.
pub(crate) const DEFAULT_BATCH_ROWS: usize = 4096;

thread_local! {
    static BATCH_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Run `f` with the vectorized executor's chunk size forced to `n` rows
/// (minimum 1) on this thread. Used by tests to prove results are
/// invariant under chunking; nested calls restore the previous value.
pub fn with_batch_rows<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let prev = BATCH_OVERRIDE.with(|c| c.replace(Some(n.max(1))));
    let out = f();
    BATCH_OVERRIDE.with(|c| c.set(prev));
    out
}

/// Effective chunk size: thread override, else `NLI_BATCH_ROWS` (read once
/// per process), else [`DEFAULT_BATCH_ROWS`].
fn batch_rows() -> usize {
    if let Some(n) = BATCH_OVERRIDE.with(|c| c.get()) {
        return n;
    }
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    ENV.get_or_init(|| {
        std::env::var("NLI_BATCH_ROWS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
    .unwrap_or(DEFAULT_BATCH_ROWS)
}

/// Number of chunks a stage over `rows` input rows processes (the
/// `batches` OpStats field); at least 1 so empty inputs still count the
/// single (empty) pass.
fn chunk_count(rows: usize) -> u64 {
    (rows.div_ceil(batch_rows())).max(1) as u64
}

// ---------------------------------------------------------------------------
// Chunks: a window of positions over selected base rows
// ---------------------------------------------------------------------------

/// Which base rows a chunk column reads: a contiguous base-row range
/// starting at the given row (scan stage; the chunk's `len` bounds it) or
/// a slice of a selection vector (post-join stages).
#[derive(Clone, Copy)]
enum Rows<'s> {
    Range(usize),
    Sel(&'s [u32]),
}

impl Rows<'_> {
    #[inline]
    fn get(&self, i: usize) -> usize {
        match self {
            Rows::Range(a) => a + i,
            Rows::Sel(s) => s[i] as usize,
        }
    }
}

/// One evaluation window: `len` positions, with one `(column, rows)` pair
/// per joined-row offset.
struct Chunk<'a> {
    len: usize,
    cols: Vec<(&'a ColumnVector, Rows<'a>)>,
}

impl Chunk<'_> {
    fn value_at(&self, off: usize, i: usize) -> Value {
        let (cv, rows) = &self.cols[off];
        cv.value_at(rows.get(i))
    }

    /// Rebuild the full row at position `i` (row-wise fallback path).
    fn row(&self, i: usize) -> Vec<Value> {
        (0..self.cols.len()).map(|c| self.value_at(c, i)).collect()
    }
}

/// The joined stream after the join stage: per-FROM-entry selection
/// vectors (all `len` long) plus the column map in joined-row offset
/// order (`(column, owning FROM entry)`).
struct Frame<'a> {
    cols: Vec<(&'a ColumnVector, usize)>,
    sels: Vec<Vec<u32>>,
    len: usize,
}

impl Frame<'_> {
    fn chunk(&self, a: usize, b: usize) -> Chunk<'_> {
        Chunk {
            len: b - a,
            cols: self
                .cols
                .iter()
                .map(|&(cv, e)| (cv, Rows::Sel(&self.sels[e][a..b])))
                .collect(),
        }
    }

    fn row(&self, pos: usize) -> Vec<Value> {
        self.cols
            .iter()
            .map(|&(cv, e)| cv.value_at(self.sels[e][pos] as usize))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Vectorized expression kernels
// ---------------------------------------------------------------------------

/// A batch of evaluated values: typed vectors with a parallel null mask
/// (`true` = NULL; the data slot then holds a placeholder), or a single
/// constant broadcast over the chunk.
enum VCol<'a> {
    Int(Vec<i64>, Vec<bool>),
    Float(Vec<f64>, Vec<bool>),
    Bool(Vec<bool>, Vec<bool>),
    Str(Vec<&'a str>, Vec<bool>),
    Date(Vec<Date>, Vec<bool>),
    Const(Value),
}

/// One position of a [`VCol`], borrowed. Mirrors the [`Value`] variants a
/// typed column can produce (never `Mixed` — gather rejects those).
#[derive(Clone, Copy)]
enum Slot<'s> {
    Null,
    I(i64),
    F(f64),
    B(bool),
    S(&'s str),
    D(Date),
}

fn slot_at<'s>(c: &'s VCol<'_>, i: usize) -> Slot<'s> {
    match c {
        VCol::Int(v, n) => {
            if n[i] {
                Slot::Null
            } else {
                Slot::I(v[i])
            }
        }
        VCol::Float(v, n) => {
            if n[i] {
                Slot::Null
            } else {
                Slot::F(v[i])
            }
        }
        VCol::Bool(v, n) => {
            if n[i] {
                Slot::Null
            } else {
                Slot::B(v[i])
            }
        }
        VCol::Str(v, n) => {
            if n[i] {
                Slot::Null
            } else {
                Slot::S(v[i])
            }
        }
        VCol::Date(v, n) => {
            if n[i] {
                Slot::Null
            } else {
                Slot::D(v[i])
            }
        }
        VCol::Const(v) => match v {
            Value::Null => Slot::Null,
            Value::Int(x) => Slot::I(*x),
            Value::Float(x) => Slot::F(*x),
            Value::Bool(x) => Slot::B(*x),
            Value::Text(s) => Slot::S(s),
            Value::Date(d) => Slot::D(*d),
        },
    }
}

fn slot_value(s: Slot<'_>) -> Value {
    match s {
        Slot::Null => Value::Null,
        Slot::I(x) => Value::Int(x),
        Slot::F(x) => Value::Float(x),
        Slot::B(x) => Value::Bool(x),
        Slot::S(x) => Value::Text(x.to_string()),
        Slot::D(x) => Value::Date(x),
    }
}

/// Rebuild the owned [`Value`] at position `i`.
fn vcol_value(c: &VCol<'_>, i: usize) -> Value {
    slot_value(slot_at(c, i))
}

/// Comparison outcome of one position pair, mirroring
/// [`Value::compare`]'s `Option<Ordering>` but distinguishing the NULL
/// case (→ NULL result) from genuinely incomparable non-NULL types
/// (→ `=` false / `!=` true).
#[derive(Clone, Copy)]
enum CmpRes {
    Null,
    Incmp,
    Ord(Ordering),
}

/// [`Value::compare`] over slots: NULL beats everything, numerics compare
/// as in the scalar path (Int–Int exact, any Float via `partial_cmp`, so
/// NaN is incomparable), same-type Text/Bool/Date compare naturally, and
/// every cross-type pair is incomparable.
fn cmp_slots(a: Slot<'_>, b: Slot<'_>) -> CmpRes {
    use Slot::*;
    match (a, b) {
        (Null, _) | (_, Null) => CmpRes::Null,
        (I(x), I(y)) => CmpRes::Ord(x.cmp(&y)),
        (I(x), F(y)) => float_cmp(x as f64, y),
        (F(x), I(y)) => float_cmp(x, y as f64),
        (F(x), F(y)) => float_cmp(x, y),
        (S(x), S(y)) => CmpRes::Ord(x.cmp(y)),
        (B(x), B(y)) => CmpRes::Ord(x.cmp(&y)),
        (D(x), D(y)) => CmpRes::Ord(x.cmp(&y)),
        _ => CmpRes::Incmp,
    }
}

fn float_cmp(a: f64, b: f64) -> CmpRes {
    match a.partial_cmp(&b) {
        Some(o) => CmpRes::Ord(o),
        None => CmpRes::Incmp,
    }
}

/// Whether a kernel output can serve as a three-valued boolean stream
/// (the `AND`/`OR` operand contract; anything else errors in the scalar
/// path, so the kernel must bail instead).
fn is_tribool(c: &VCol<'_>) -> bool {
    matches!(
        c,
        VCol::Bool(..) | VCol::Const(Value::Bool(_)) | VCol::Const(Value::Null)
    )
}

fn tribool_at(c: &VCol<'_>, i: usize) -> Option<bool> {
    match slot_at(c, i) {
        Slot::Null => None,
        Slot::B(b) => Some(b),
        _ => unreachable!("tribool stream vetted by is_tribool"),
    }
}

/// Evaluate `e` over a chunk. `None` means "out of kernel scope or the
/// scalar evaluator could error here" — the caller must fall back to
/// row-wise evaluation of the whole chunk.
fn eval_vcol<'a>(e: &PlanExpr, ch: &Chunk<'a>) -> Option<VCol<'a>> {
    let n = ch.len;
    match e {
        PlanExpr::Col(o) => {
            let (cv, rows) = &ch.cols[*o];
            gather(cv, *rows, n)
        }
        PlanExpr::Literal(v) => Some(VCol::Const(v.clone())),
        PlanExpr::Binary { left, op, right } => match op {
            BinOp::And | BinOp::Or => {
                let l = eval_vcol(left, ch)?;
                let r = eval_vcol(right, ch)?;
                if !is_tribool(&l) || !is_tribool(&r) {
                    return None; // scalar path errors "expected boolean"
                }
                let mut vals = Vec::with_capacity(n);
                let mut nulls = Vec::with_capacity(n);
                for i in 0..n {
                    let lb = tribool_at(&l, i);
                    let rb = tribool_at(&r, i);
                    let out = match op {
                        BinOp::And => match (lb, rb) {
                            (Some(false), _) | (_, Some(false)) => Some(false),
                            (Some(true), Some(true)) => Some(true),
                            _ => None,
                        },
                        _ => match (lb, rb) {
                            (Some(true), _) | (_, Some(true)) => Some(true),
                            (Some(false), Some(false)) => Some(false),
                            _ => None,
                        },
                    };
                    vals.push(out.unwrap_or(false));
                    nulls.push(out.is_none());
                }
                Some(VCol::Bool(vals, nulls))
            }
            BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let l = eval_vcol(left, ch)?;
                let r = eval_vcol(right, ch)?;
                let mut vals = Vec::with_capacity(n);
                let mut nulls = Vec::with_capacity(n);
                for i in 0..n {
                    let (v, null) = match cmp_slots(slot_at(&l, i), slot_at(&r, i)) {
                        CmpRes::Null => (false, true),
                        CmpRes::Incmp => match op {
                            BinOp::Eq => (false, false),
                            BinOp::Neq => (true, false),
                            _ => (false, true),
                        },
                        CmpRes::Ord(c) => (
                            match op {
                                BinOp::Eq => c == Ordering::Equal,
                                BinOp::Neq => c != Ordering::Equal,
                                BinOp::Lt => c == Ordering::Less,
                                BinOp::Le => c != Ordering::Greater,
                                BinOp::Gt => c == Ordering::Greater,
                                _ => c != Ordering::Less,
                            },
                            false,
                        ),
                    };
                    vals.push(v);
                    nulls.push(null);
                }
                Some(VCol::Bool(vals, nulls))
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                let l = eval_vcol(left, ch)?;
                let r = eval_vcol(right, ch)?;
                // The scalar path yields Int only when both operands are
                // Int values (and the op isn't Div); with homogeneous
                // columns that is a chunk-level property.
                let int_operand =
                    |c: &VCol<'_>| matches!(c, VCol::Int(..) | VCol::Const(Value::Int(_)));
                let int_result = int_operand(&l) && int_operand(&r) && *op != BinOp::Div;
                let mut vals = Vec::with_capacity(n);
                let mut nulls = Vec::with_capacity(n);
                for i in 0..n {
                    let a = match slot_at(&l, i) {
                        Slot::Null => None,
                        Slot::I(x) => Some(x as f64),
                        Slot::F(x) => Some(x),
                        _ => return None, // scalar path errors: non-numeric
                    };
                    let b = match slot_at(&r, i) {
                        Slot::Null => None,
                        Slot::I(x) => Some(x as f64),
                        Slot::F(x) => Some(x),
                        _ => return None,
                    };
                    let (Some(a), Some(b)) = (a, b) else {
                        vals.push(0.0);
                        nulls.push(true);
                        continue;
                    };
                    let x = match op {
                        BinOp::Add => a + b,
                        BinOp::Sub => a - b,
                        BinOp::Mul => a * b,
                        _ => {
                            if b == 0.0 {
                                vals.push(0.0);
                                nulls.push(true); // division by zero is NULL
                                continue;
                            }
                            a / b
                        }
                    };
                    vals.push(x);
                    nulls.push(false);
                }
                Some(if int_result {
                    // Same f64 accumulation + cast as the scalar path.
                    VCol::Int(vals.into_iter().map(|x| x as i64).collect(), nulls)
                } else {
                    VCol::Float(vals, nulls)
                })
            }
        },
        PlanExpr::Not(inner) => match eval_vcol(inner, ch)? {
            VCol::Bool(v, nulls) => Some(VCol::Bool(v.into_iter().map(|b| !b).collect(), nulls)),
            VCol::Const(Value::Bool(b)) => Some(VCol::Const(Value::Bool(!b))),
            VCol::Const(Value::Null) => Some(VCol::Const(Value::Null)),
            _ => None, // scalar path errors "NOT applied to ..."
        },
        PlanExpr::IsNull { expr, negated } => {
            let inner = eval_vcol(expr, ch)?;
            if let VCol::Const(v) = &inner {
                return Some(VCol::Const(Value::Bool(v.is_null() != *negated)));
            }
            let vals = (0..n)
                .map(|i| matches!(slot_at(&inner, i), Slot::Null) != *negated)
                .collect();
            Some(VCol::Bool(vals, vec![false; n]))
        }
        PlanExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let inner = eval_vcol(expr, ch)?;
            let mut vals = Vec::with_capacity(n);
            let mut nulls = Vec::with_capacity(n);
            for i in 0..n {
                match slot_at(&inner, i) {
                    Slot::Null => {
                        vals.push(false);
                        nulls.push(true);
                    }
                    Slot::S(s) => {
                        vals.push(exec::like_match(pattern, s) != *negated);
                        nulls.push(false);
                    }
                    other => {
                        // Non-text LIKE compares the canonical spelling.
                        let m = exec::like_match(pattern, &slot_value(other).canonical());
                        vals.push(m != *negated);
                        nulls.push(false);
                    }
                }
            }
            Some(VCol::Bool(vals, nulls))
        }
        PlanExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval_vcol(expr, ch)?;
            let lo = eval_vcol(low, ch)?;
            let hi = eval_vcol(high, ch)?;
            let mut vals = Vec::with_capacity(n);
            let mut nulls = Vec::with_capacity(n);
            for i in 0..n {
                let s = slot_at(&v, i);
                let a = cmp_slots(s, slot_at(&lo, i));
                let b = cmp_slots(s, slot_at(&hi, i));
                match (a, b) {
                    (CmpRes::Ord(x), CmpRes::Ord(y)) => {
                        let inside = x != Ordering::Less && y != Ordering::Greater;
                        vals.push(inside != *negated);
                        nulls.push(false);
                    }
                    _ => {
                        vals.push(false);
                        nulls.push(true);
                    }
                }
            }
            Some(VCol::Bool(vals, nulls))
        }
        PlanExpr::InList {
            expr,
            list,
            negated,
        } => {
            let inner = eval_vcol(expr, ch)?;
            let mut vals = Vec::with_capacity(n);
            let mut nulls = Vec::with_capacity(n);
            for i in 0..n {
                let v = vcol_value(&inner, i);
                if v.is_null() {
                    vals.push(false);
                    nulls.push(true);
                } else {
                    let found = list.iter().any(|x| v.sql_eq(x) == Some(true));
                    vals.push(found != *negated);
                    nulls.push(false);
                }
            }
            Some(VCol::Bool(vals, nulls))
        }
        // Out of kernel scope: `*`/aggregates error in row context, and
        // subplans must have been materialized away before evaluation.
        PlanExpr::Star
        | PlanExpr::Agg { .. }
        | PlanExpr::InPlan { .. }
        | PlanExpr::ScalarPlan(_) => None,
    }
}

/// Gather one stored column over a chunk's rows into a typed [`VCol`].
/// `Mixed` columns (mistyped storage) stay on the row-wise path.
fn gather<'a>(cv: &'a ColumnVector, rows: Rows<'a>, n: usize) -> Option<VCol<'a>> {
    macro_rules! pull {
        ($src:expr, $variant:ident, $map:expr) => {{
            let src = $src;
            let mut vals = Vec::with_capacity(n);
            let mut nulls = Vec::with_capacity(n);
            for i in 0..n {
                let ri = rows.get(i);
                nulls.push(cv.is_null(ri));
                #[allow(clippy::redundant_closure_call)]
                vals.push($map(&src[ri]));
            }
            Some(VCol::$variant(vals, nulls))
        }};
    }
    match &cv.data {
        ColumnData::Int(v) => pull!(v, Int, |x: &i64| *x),
        ColumnData::Float(v) => pull!(v, Float, |x: &f64| *x),
        ColumnData::Bool(v) => pull!(v, Bool, |x: &bool| *x),
        ColumnData::Text(v) => pull!(v, Str, |x: &'a String| x.as_str()),
        ColumnData::Date(v) => pull!(v, Date, |x: &Date| *x),
        ColumnData::Mixed(_) => None,
    }
}

/// Predicate truthiness of a kernel output at position `i`: only a
/// non-NULL `true` passes (SQL three-valued logic); non-boolean streams
/// pass nothing, like the scalar `truthy`.
fn truthy_at(c: &VCol<'_>, i: usize) -> bool {
    match c {
        VCol::Bool(v, n) => v[i] && !n[i],
        VCol::Const(v) => exec::truthy(v),
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Scan stage
// ---------------------------------------------------------------------------

/// Selection vector of base rows surviving a scan's pushed-down filter.
fn scan_indices(
    node: &ScanNode,
    batch: &nli_core::ColumnBatch,
    base_rows: &[Vec<Value>],
) -> Result<Vec<u32>> {
    let n = batch.rows;
    assert!(n <= u32::MAX as usize, "table too large for u32 selections");
    let filter = match &node.filter {
        None => return Ok((0..n as u32).collect()),
        Some(f) => f,
    };
    let mut out = Vec::new();
    let bs = batch_rows();
    let mut a = 0;
    while a < n {
        let b = (a + bs).min(n);
        let chunk = Chunk {
            len: b - a,
            cols: (0..node.width)
                .map(|c| (&batch.columns[c], Rows::Range(a)))
                .collect(),
        };
        match eval_vcol(filter, &chunk) {
            Some(mask) => {
                for i in 0..chunk.len {
                    if truthy_at(&mask, i) {
                        out.push((a + i) as u32);
                    }
                }
            }
            None => {
                for (ri, row) in base_rows.iter().enumerate().take(b).skip(a) {
                    if exec::truthy(&exec::eval_expr(filter, row)?) {
                        out.push(ri as u32);
                    }
                }
            }
        }
        a = b;
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Join stage
// ---------------------------------------------------------------------------

/// Resolve a joined-row offset to `(FROM entry, table-local column)`.
fn entry_col_of(p: &SelectPlan, off: usize) -> (usize, usize) {
    for (e, s) in p.scans.iter().enumerate() {
        if off >= s.offset && off < s.offset + s.width {
            return (e, off - s.offset);
        }
    }
    unreachable!("join key offset {off} outside the joined row");
}

/// Typed join keys: `Some(i64)` per selected row, `None` for NULL. Only
/// valid when the stored column is `Int` (canonical equality is then the
/// `i64` equality).
fn int_keys(cv: &ColumnVector, sel: &[u32]) -> Vec<Option<i64>> {
    let ColumnData::Int(v) = &cv.data else {
        unreachable!("int_keys on non-Int column");
    };
    sel.iter()
        .map(|&i| {
            let i = i as usize;
            if cv.is_null(i) {
                None
            } else {
                Some(v[i])
            }
        })
        .collect()
}

/// Canonical-string join keys: the exact equivalence classes the legacy
/// hash join used, for every column type (including `Mixed`).
fn canon_keys(cv: &ColumnVector, sel: &[u32]) -> Vec<Option<String>> {
    sel.iter()
        .map(|&i| {
            let i = i as usize;
            if cv.is_null(i) {
                None
            } else {
                Some(cv.value_at(i).canonical())
            }
        })
        .collect()
}

/// Hash-join two key streams. Returns `(distinct build keys, NULL build
/// keys, matched (prefix position, new position) pairs)`. With
/// [`BuildSide::New`] the pairs come out prefix-major in probe order —
/// exactly the legacy row order; with [`BuildSide::Prefix`] they are
/// new-major (the executor restores order afterwards).
fn join_pairs<K: Eq + std::hash::Hash>(
    prefix_keys: &[Option<K>],
    new_keys: &[Option<K>],
    side: BuildSide,
) -> (u64, u64, Vec<(u32, u32)>) {
    let (build, probe) = match side {
        BuildSide::New => (new_keys, prefix_keys),
        BuildSide::Prefix => (prefix_keys, new_keys),
    };
    let mut table: HashMap<&K, Vec<u32>> = HashMap::new();
    let mut null_build = 0u64;
    for (i, k) in build.iter().enumerate() {
        match k {
            Some(k) => table.entry(k).or_default().push(i as u32),
            None => null_build += 1,
        }
    }
    let mut pairs = Vec::new();
    for (i, k) in probe.iter().enumerate() {
        let Some(k) = k.as_ref() else { continue };
        if let Some(hits) = table.get(k) {
            for &h in hits {
                pairs.push(match side {
                    BuildSide::New => (i as u32, h),
                    BuildSide::Prefix => (h, i as u32),
                });
            }
        }
    }
    (table.len() as u64, null_build, pairs)
}

/// Gather a typed key column over a selection, verifying it is NULL-free
/// and non-decreasing (the merge-join precondition the planner assumed
/// from statistics). `None` = precondition no longer holds → hash fall
/// back.
fn sorted_gather<T: Copy + PartialOrd>(
    vals: &[T],
    cv: &ColumnVector,
    sel: &[u32],
) -> Option<Vec<T>> {
    let mut out: Vec<T> = Vec::with_capacity(sel.len());
    for &i in sel {
        let i = i as usize;
        if cv.is_null(i) {
            return None;
        }
        let x = vals[i];
        if let Some(&prev) = out.last() {
            if x < prev {
                return None;
            }
        }
        out.push(x);
    }
    Some(out)
}

/// Merge two sorted key streams: equal-run cross products, probe-major —
/// the same pair order a prefix-probing hash join emits.
fn merge_runs<T: Ord>(probe: &[T], build: &[T]) -> Vec<(u32, u32)> {
    let mut pairs = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < probe.len() && j < build.len() {
        match probe[i].cmp(&build[j]) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                let mut i2 = i;
                while i2 < probe.len() && probe[i2] == probe[i] {
                    i2 += 1;
                }
                let mut j2 = j;
                while j2 < build.len() && build[j2] == build[j] {
                    j2 += 1;
                }
                for p in i..i2 {
                    for q in j..j2 {
                        pairs.push((p as u32, q as u32));
                    }
                }
                i = i2;
                j = j2;
            }
        }
    }
    pairs
}

/// Try the merge strategy; `None` if the runtime data no longer satisfies
/// the sortedness/type precondition.
fn merge_pairs(
    pcv: &ColumnVector,
    psel: &[u32],
    bcv: &ColumnVector,
    bsel: &[u32],
) -> Option<Vec<(u32, u32)>> {
    match (&pcv.data, &bcv.data) {
        (ColumnData::Int(pv), ColumnData::Int(bv)) => {
            let p = sorted_gather(pv, pcv, psel)?;
            let b = sorted_gather(bv, bcv, bsel)?;
            Some(merge_runs(&p, &b))
        }
        (ColumnData::Date(pv), ColumnData::Date(bv)) => {
            let p = sorted_gather(pv, pcv, psel)?;
            let b = sorted_gather(bv, bcv, bsel)?;
            Some(merge_runs(&p, &b))
        }
        _ => None,
    }
}

/// Hash-join dispatch on key column types: typed `i64` keys only when
/// *both* stored columns are `Int` (otherwise canonical strings, which
/// match legacy equality even across Int/Float canonical collisions).
fn hash_pairs(
    pcv: &ColumnVector,
    psel: &[u32],
    bcv: &ColumnVector,
    bsel: &[u32],
    side: BuildSide,
) -> (u64, u64, Vec<(u32, u32)>) {
    if matches!(&pcv.data, ColumnData::Int(_)) && matches!(&bcv.data, ColumnData::Int(_)) {
        join_pairs(&int_keys(pcv, psel), &int_keys(bcv, bsel), side)
    } else {
        join_pairs(&canon_keys(pcv, psel), &canon_keys(bcv, bsel), side)
    }
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

/// Group the frame's positions by the GROUP BY key, first-seen order.
/// With no GROUP BY, everything (possibly nothing) is one group — the
/// "aggregates over empty input still produce one row" rule.
fn group_positions(p: &SelectPlan, fr: &Frame) -> Result<Vec<Vec<u32>>> {
    if p.group_by.is_empty() {
        return Ok(vec![(0..fr.len as u32).collect()]);
    }
    // Single stored-Int or stored-Text key: group on the typed value
    // without canonicalizing.
    if let [PlanExpr::Col(off)] = p.group_by.as_slice() {
        let (cv, e) = fr.cols[*off];
        fn by_key<K: Eq + std::hash::Hash>(
            fr: &Frame,
            e: usize,
            cv: &ColumnVector,
            key_at: impl Fn(usize) -> K,
        ) -> Vec<Vec<u32>> {
            let mut index: HashMap<Option<K>, usize> = HashMap::new();
            let mut groups: Vec<Vec<u32>> = Vec::new();
            for pos in 0..fr.len {
                let ri = fr.sels[e][pos] as usize;
                let key = if cv.is_null(ri) {
                    None
                } else {
                    Some(key_at(ri))
                };
                let gi = *index.entry(key).or_insert_with(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                groups[gi].push(pos as u32);
            }
            groups
        }
        match &cv.data {
            ColumnData::Int(data) => {
                // Dense-range keys (the common FK/ID case) skip hashing
                // entirely: one min/max pass, then direct slot indexing.
                let mut lo = i64::MAX;
                let mut hi = i64::MIN;
                for pos in 0..fr.len {
                    let ri = fr.sels[e][pos] as usize;
                    if !cv.is_null(ri) {
                        lo = lo.min(data[ri]);
                        hi = hi.max(data[ri]);
                    }
                }
                let dense = lo <= hi && ((hi - lo) as u128) < 4 * fr.len as u128 + 1024;
                if dense {
                    let width = (hi - lo) as usize + 1;
                    // one extra slot at the end collects the NULL group
                    let mut slot: Vec<u32> = vec![u32::MAX; width + 1];
                    let mut groups: Vec<Vec<u32>> = Vec::new();
                    for pos in 0..fr.len {
                        let ri = fr.sels[e][pos] as usize;
                        let k = if cv.is_null(ri) {
                            width
                        } else {
                            (data[ri] - lo) as usize
                        };
                        let gi = if slot[k] == u32::MAX {
                            slot[k] = groups.len() as u32;
                            groups.push(Vec::new());
                            slot[k]
                        } else {
                            slot[k]
                        };
                        groups[gi as usize].push(pos as u32);
                    }
                    return Ok(groups);
                }
                return Ok(by_key(fr, e, cv, |ri| data[ri]));
            }
            ColumnData::Text(data) => return Ok(by_key(fr, e, cv, |ri| data[ri].as_str())),
            _ => {}
        }
    }
    // General path: canonical key strings, kernel-evaluated per chunk
    // with the usual row-wise fallback.
    let mut index: HashMap<Vec<String>, usize> = HashMap::new();
    let mut groups: Vec<Vec<u32>> = Vec::new();
    let mut push = |key: Vec<String>, pos: usize, groups: &mut Vec<Vec<u32>>| {
        let gi = *index.entry(key).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[gi].push(pos as u32);
    };
    let bs = batch_rows();
    let mut a = 0;
    while a < fr.len {
        let b = (a + bs).min(fr.len);
        let ch = fr.chunk(a, b);
        let kernels: Option<Vec<VCol>> = p.group_by.iter().map(|g| eval_vcol(g, &ch)).collect();
        match kernels {
            Some(cols) => {
                for i in 0..ch.len {
                    let key = cols.iter().map(|c| vcol_value(c, i).canonical()).collect();
                    push(key, a + i, &mut groups);
                }
            }
            None => {
                for i in 0..ch.len {
                    let row = ch.row(i);
                    let mut key = Vec::with_capacity(p.group_by.len());
                    for g in &p.group_by {
                        key.push(exec::eval_expr(g, &row)?.canonical());
                    }
                    push(key, a + i, &mut groups);
                }
            }
        }
        a = b;
    }
    Ok(groups)
}

/// Group-context evaluation over frame positions; the structural twin of
/// the legacy `eval_group` (aggregates consume the group, bare
/// expressions take the group's first row).
fn eval_group_v(e: &PlanExpr, fr: &Frame, positions: &[u32]) -> Result<Value> {
    match e {
        PlanExpr::Agg {
            func,
            arg,
            distinct,
        } => eval_agg_v(*func, arg, *distinct, fr, positions),
        PlanExpr::Binary { left, op, right } => {
            let l = eval_group_v(left, fr, positions)?;
            let r = eval_group_v(right, fr, positions)?;
            exec::eval_binary(&l, *op, &r)
        }
        PlanExpr::Not(inner) => Ok(match eval_group_v(inner, fr, positions)? {
            Value::Bool(b) => Value::Bool(!b),
            Value::Null => Value::Null,
            other => {
                return Err(nli_core::NliError::Execution(format!(
                    "NOT applied to {other}"
                )))
            }
        }),
        other => match positions.first() {
            Some(&p) => exec::eval_expr(other, &fr.row(p as usize)),
            None => Ok(Value::Null),
        },
    }
}

fn eval_agg_v(
    func: AggFunc,
    arg: &PlanExpr,
    distinct: bool,
    fr: &Frame,
    positions: &[u32],
) -> Result<Value> {
    if matches!(arg, PlanExpr::Star) {
        if func != AggFunc::Count {
            return Err(nli_core::NliError::Execution(format!(
                "{}(*) is invalid",
                func.name()
            )));
        }
        return Ok(Value::Int(positions.len() as i64));
    }
    if let PlanExpr::Col(off) = arg {
        let (cv, e) = fr.cols[*off];
        let sel = &fr.sels[e];
        match &cv.data {
            ColumnData::Int(data) => {
                let mut vals: Vec<i64> = Vec::with_capacity(positions.len());
                for &pos in positions {
                    let ri = sel[pos as usize] as usize;
                    if !cv.is_null(ri) {
                        vals.push(data[ri]);
                    }
                }
                if distinct {
                    let mut seen = HashSet::new();
                    vals.retain(|v| seen.insert(*v));
                }
                return Ok(match func {
                    AggFunc::Count => Value::Int(vals.len() as i64),
                    AggFunc::Sum | AggFunc::Avg => {
                        if vals.is_empty() {
                            Value::Null
                        } else {
                            // Accumulate in f64 in row order — the exact
                            // arithmetic of the scalar path.
                            let mut sum = 0.0;
                            for &v in &vals {
                                sum += v as f64;
                            }
                            if func == AggFunc::Avg {
                                Value::Float(sum / vals.len() as f64)
                            } else {
                                Value::Int(sum as i64)
                            }
                        }
                    }
                    AggFunc::Min => vals.iter().copied().min().map_or(Value::Null, Value::Int),
                    AggFunc::Max => vals.iter().copied().max().map_or(Value::Null, Value::Int),
                });
            }
            ColumnData::Float(data) => {
                let mut vals: Vec<f64> = Vec::with_capacity(positions.len());
                for &pos in positions {
                    let ri = sel[pos as usize] as usize;
                    if !cv.is_null(ri) {
                        vals.push(data[ri]);
                    }
                }
                if distinct {
                    let mut seen = HashSet::new();
                    vals.retain(|v| seen.insert(Value::Float(*v).canonical()));
                }
                return Ok(match func {
                    AggFunc::Count => Value::Int(vals.len() as i64),
                    AggFunc::Sum | AggFunc::Avg => {
                        if vals.is_empty() {
                            Value::Null
                        } else {
                            let mut sum = 0.0;
                            for &v in &vals {
                                sum += v;
                            }
                            if func == AggFunc::Avg {
                                Value::Float(sum / vals.len() as f64)
                            } else {
                                Value::Float(sum)
                            }
                        }
                    }
                    AggFunc::Min | AggFunc::Max => {
                        // Fold with the scalar take-new rule so NaN (which
                        // compares as "neither") keeps the incumbent.
                        let mut best: Option<f64> = None;
                        for &v in &vals {
                            best = Some(match best {
                                None => v,
                                Some(b) => {
                                    let take_new = match v.partial_cmp(&b) {
                                        Some(Ordering::Less) => func == AggFunc::Min,
                                        Some(Ordering::Greater) => func == AggFunc::Max,
                                        _ => false,
                                    };
                                    if take_new {
                                        v
                                    } else {
                                        b
                                    }
                                }
                            });
                        }
                        best.map_or(Value::Null, Value::Float)
                    }
                });
            }
            _ => {
                let mut vals = Vec::with_capacity(positions.len());
                for &pos in positions {
                    let v = cv.value_at(sel[pos as usize] as usize);
                    if !v.is_null() {
                        vals.push(v);
                    }
                }
                return exec::agg_from_values(func, vals, distinct);
            }
        }
    }
    // Computed argument: evaluate per row, then the shared aggregate body.
    let mut vals = Vec::with_capacity(positions.len());
    for &pos in positions {
        let v = exec::eval_expr(arg, &fr.row(pos as usize))?;
        if !v.is_null() {
            vals.push(v);
        }
    }
    exec::agg_from_values(func, vals, distinct)
}

// ---------------------------------------------------------------------------
// The executor
// ---------------------------------------------------------------------------

/// Execute one SELECT block over the database's columnar form. Emits a
/// `sql.vectorize` trace span per block (subquery materialization nests).
pub(crate) fn exec_select(
    p: &SelectPlan,
    db: &Database,
    mut prof: Option<&mut SelectProfile>,
) -> Result<ResultSet> {
    let _span = obs::global().trace_span("sql.vectorize");
    let profiling = prof.is_some();

    // -- Scan: one selection vector per FROM entry --------------------------
    let batches: Vec<_> = p.scans.iter().map(|s| db.columnar(s.table)).collect();
    let mut scan_sels: Vec<Option<Vec<u32>>> = Vec::with_capacity(p.scans.len());
    for (e, node) in p.scans.iter().enumerate() {
        let start = exec::tick(profiling);
        let sel = scan_indices(node, &batches[e], db.rows(node.table))?;
        if let Some(pr) = prof.as_deref_mut() {
            let mut st = OpStats::flow(batches[e].rows, sel.len());
            st.batches = chunk_count(batches[e].rows);
            st.wall_micros = exec::tock(start);
            pr.scans.push(st);
        }
        scan_sels.push(Some(sel));
    }

    // -- Join: pair up selection vectors in exec_order ----------------------
    // `prefix` lists the FROM entries already joined (exec order);
    // `cur_sels[i]` is the selection vector of `prefix[i]`, all `len` long.
    let mut prefix: Vec<usize> = Vec::new();
    let mut cur_sels: Vec<Vec<u32>> = Vec::new();
    let mut needs_restore = p.exec_order.iter().enumerate().any(|(i, &e)| i != e);
    if let Some(&first) = p.exec_order.first() {
        prefix.push(first);
        cur_sels.push(scan_sels[first].take().expect("first scan consumed once"));
    }
    for (k, step) in p.joins.iter().enumerate() {
        let start = exec::tick(profiling);
        let new_e = p.exec_order[k + 1];
        let new_sel = scan_sels[new_e].take().expect("each scan consumed once");
        let prefix_len = cur_sels.first().map_or(0, Vec::len);
        let rows_in = prefix_len + new_sel.len();
        let mut counters: Vec<(&'static str, u64)> = Vec::new();
        let pairs = match step.kind {
            JoinKind::Cross => {
                let mut pairs = Vec::new();
                for ppos in 0..prefix_len as u32 {
                    for npos in 0..new_sel.len() as u32 {
                        pairs.push((ppos, npos));
                    }
                }
                pairs
            }
            JoinKind::Hash {
                probe_off,
                build_col,
                build_side,
            } => {
                let (pe, plocal) = entry_col_of(p, probe_off);
                let pi = prefix.iter().position(|&e| e == pe).expect("probe joined");
                let pcv = &batches[pe].columns[plocal];
                let bcv = &batches[new_e].columns[build_col];
                if build_side == BuildSide::Prefix {
                    needs_restore = true;
                }
                let (build_keys, null_build, pairs) =
                    hash_pairs(pcv, &cur_sels[pi], bcv, &new_sel, build_side);
                if profiling {
                    let (build_rows, probe_rows) = match build_side {
                        BuildSide::New => (new_sel.len(), prefix_len),
                        BuildSide::Prefix => (prefix_len, new_sel.len()),
                    };
                    counters.push(("build_rows", build_rows as u64));
                    counters.push(("build_keys", build_keys));
                    counters.push(("null_build_keys", null_build));
                    counters.push(("probe_rows", probe_rows as u64));
                }
                pairs
            }
            JoinKind::Merge {
                probe_off,
                build_col,
            } => {
                let (pe, plocal) = entry_col_of(p, probe_off);
                let pi = prefix.iter().position(|&e| e == pe).expect("probe joined");
                let pcv = &batches[pe].columns[plocal];
                let bcv = &batches[new_e].columns[build_col];
                match merge_pairs(pcv, &cur_sels[pi], bcv, &new_sel) {
                    Some(pairs) => {
                        if profiling {
                            counters.push(("build_rows", new_sel.len() as u64));
                            counters.push(("probe_rows", prefix_len as u64));
                            counters.push(("merge_fallback", 0));
                        }
                        pairs
                    }
                    None => {
                        // Data drifted from the stats the plan was costed
                        // on; degrade to the order-preserving hash join.
                        let (build_keys, null_build, pairs) =
                            hash_pairs(pcv, &cur_sels[pi], bcv, &new_sel, BuildSide::New);
                        if profiling {
                            counters.push(("build_rows", new_sel.len() as u64));
                            counters.push(("build_keys", build_keys));
                            counters.push(("null_build_keys", null_build));
                            counters.push(("probe_rows", prefix_len as u64));
                            counters.push(("merge_fallback", 1));
                        }
                        pairs
                    }
                }
            }
        };
        // Apply the pair list to every joined selection vector.
        assert!(pairs.len() <= u32::MAX as usize, "join output too large");
        for sel in &mut cur_sels {
            *sel = pairs.iter().map(|&(ppos, _)| sel[ppos as usize]).collect();
        }
        cur_sels.push(
            pairs
                .iter()
                .map(|&(_, npos)| new_sel[npos as usize])
                .collect(),
        );
        prefix.push(new_e);
        if let Some(pr) = prof.as_deref_mut() {
            let mut st = OpStats::flow(rows_in, pairs.len());
            st.batches = chunk_count(rows_in);
            st.wall_micros = exec::tock(start);
            st.counters = counters;
            pr.joins.push(st);
        }
    }

    // Back to FROM order, restoring legacy row order when the cost pass
    // (or a prefix-side build) perturbed it: the legacy joined stream is
    // lexicographic in the per-entry base-row index tuples.
    let n_entries = p.scans.len();
    let len = cur_sels.first().map_or(0, Vec::len);
    let mut sels: Vec<Vec<u32>> = vec![Vec::new(); n_entries];
    for (i, &e) in prefix.iter().enumerate() {
        sels[e] = std::mem::take(&mut cur_sels[i]);
    }
    if needs_restore && n_entries > 1 && len > 1 {
        let mut perm: Vec<u32> = (0..len as u32).collect();
        perm.sort_unstable_by(|&x, &y| {
            for s in &sels {
                match s[x as usize].cmp(&s[y as usize]) {
                    Ordering::Equal => continue,
                    o => return o,
                }
            }
            Ordering::Equal
        });
        for s in &mut sels {
            *s = perm.iter().map(|&pos| s[pos as usize]).collect();
        }
    }

    let mut frame_cols = Vec::with_capacity(p.joined_columns.len());
    for (e, node) in p.scans.iter().enumerate() {
        for c in 0..node.width {
            frame_cols.push((&batches[e].columns[c], e));
        }
    }
    let mut frame = Frame {
        cols: frame_cols,
        sels,
        len,
    };

    // -- Residual filter (subqueries materialized per database) -------------
    let residual_start = exec::tick(profiling);
    let residual_subplans = if profiling {
        p.residual.as_ref().map_or(0, |r| r.count_subplans())
    } else {
        0
    };
    let materialized_residual;
    let residual: Option<&PlanExpr> = match &p.residual {
        Some(r) if r.has_subplan() => {
            materialized_residual = exec::materialize_subplans(r, db)?;
            Some(&materialized_residual)
        }
        Some(r) => Some(r),
        None => None,
    };
    let materialized_having;
    let having: Option<&PlanExpr> = match &p.having {
        Some(h) if h.has_subplan() => {
            materialized_having = exec::materialize_subplans(h, db)?;
            Some(&materialized_having)
        }
        Some(h) => Some(h),
        None => None,
    };

    if let Some(w) = residual {
        let rows_in = frame.len;
        let mut kept: Vec<u32> = Vec::new();
        let bs = batch_rows();
        let mut a = 0;
        while a < frame.len {
            let b = (a + bs).min(frame.len);
            let ch = frame.chunk(a, b);
            match eval_vcol(w, &ch) {
                Some(mask) => {
                    for i in 0..ch.len {
                        if truthy_at(&mask, i) {
                            kept.push((a + i) as u32);
                        }
                    }
                }
                None => {
                    for i in 0..ch.len {
                        if exec::truthy(&exec::eval_expr(w, &ch.row(i))?) {
                            kept.push((a + i) as u32);
                        }
                    }
                }
            }
            a = b;
        }
        for sel in &mut frame.sels {
            *sel = kept.iter().map(|&pos| sel[pos as usize]).collect();
        }
        frame.len = kept.len();
        if let Some(pr) = prof.as_deref_mut() {
            let mut st = OpStats::flow(rows_in, frame.len);
            st.batches = chunk_count(rows_in);
            st.wall_micros = exec::tock(residual_start);
            if residual_subplans > 0 {
                st.counters.push(("subplans", residual_subplans));
            }
            pr.residual = Some(st);
        }
    }

    // -- Aggregate / project ------------------------------------------------
    let mut out_rows: Vec<Vec<Value>> = Vec::new();
    let mut sort_keys: Vec<Vec<Value>> = Vec::new();
    let need_sort = !p.order_by.is_empty();
    let stage_start = exec::tick(profiling);
    let stage_rows_in = frame.len;

    if p.aggregate {
        let groups = group_positions(p, &frame)?;
        let n_groups = groups.len() as u64;
        let mut having_rejected = 0u64;
        for g in &groups {
            if let Some(h) = having {
                if !exec::truthy(&eval_group_v(h, &frame, g)?) {
                    having_rejected += 1;
                    continue;
                }
            }
            let mut out = Vec::with_capacity(p.items.len());
            for item in &p.items {
                out.push(eval_group_v(item, &frame, g)?);
            }
            if need_sort {
                let mut keys = Vec::with_capacity(p.order_by.len());
                for o in &p.order_by {
                    keys.push(eval_group_v(&o.expr, &frame, g)?);
                }
                sort_keys.push(keys);
            }
            out_rows.push(out);
        }
        if let Some(pr) = prof.as_deref_mut() {
            let mut st = OpStats::flow(stage_rows_in, out_rows.len());
            st.batches = chunk_count(stage_rows_in);
            st.wall_micros = exec::tock(stage_start);
            st.counters.push(("groups", n_groups));
            if p.having.is_some() {
                st.counters.push(("having_rejected", having_rejected));
            }
            pr.aggregate = Some(st);
        }
    } else {
        let bs = batch_rows();
        let mut a = 0;
        while a < frame.len {
            let b = (a + bs).min(frame.len);
            let ch = frame.chunk(a, b);
            let key_cols: Option<Vec<VCol>> = if need_sort {
                p.order_by.iter().map(|o| eval_vcol(&o.expr, &ch)).collect()
            } else {
                Some(Vec::new())
            };
            let item_cols: Option<Vec<VCol>> = if p.star {
                Some(Vec::new())
            } else {
                p.items.iter().map(|it| eval_vcol(it, &ch)).collect()
            };
            match (key_cols, item_cols) {
                (Some(kc), Some(ic)) => {
                    for i in 0..ch.len {
                        if need_sort {
                            sort_keys.push(kc.iter().map(|c| vcol_value(c, i)).collect());
                        }
                        out_rows.push(if p.star {
                            ch.row(i)
                        } else {
                            ic.iter().map(|c| vcol_value(c, i)).collect()
                        });
                    }
                }
                _ => {
                    // Row-wise fallback in the legacy order: sort keys
                    // first, then the projection, per row.
                    for i in 0..ch.len {
                        let row = ch.row(i);
                        if need_sort {
                            let mut keys = Vec::with_capacity(p.order_by.len());
                            for o in &p.order_by {
                                keys.push(exec::eval_expr(&o.expr, &row)?);
                            }
                            sort_keys.push(keys);
                        }
                        if p.star {
                            out_rows.push(row);
                        } else {
                            let mut out = Vec::with_capacity(p.items.len());
                            for item in &p.items {
                                out.push(exec::eval_expr(item, &row)?);
                            }
                            out_rows.push(out);
                        }
                    }
                }
            }
            a = b;
        }
        if let Some(pr) = prof.as_deref_mut() {
            let mut st = OpStats::flow(stage_rows_in, out_rows.len());
            st.batches = chunk_count(stage_rows_in);
            st.wall_micros = exec::tock(stage_start);
            pr.project = Some(st);
        }
    }

    // -- Sort / distinct / limit (row-at-a-time tail, identical to legacy) --
    if need_sort {
        let sort_start = exec::tick(profiling);
        let n = out_rows.len();
        let mut order: Vec<usize> = (0..out_rows.len()).collect();
        order.sort_by(|&a, &b| {
            for (o, (ka, kb)) in p
                .order_by
                .iter()
                .zip(sort_keys[a].iter().zip(sort_keys[b].iter()))
            {
                let c = ka.total_cmp(kb);
                let c = if o.desc { c.reverse() } else { c };
                if c != Ordering::Equal {
                    return c;
                }
            }
            Ordering::Equal
        });
        out_rows = order
            .into_iter()
            .map(|i| std::mem::take(&mut out_rows[i]))
            .collect();
        if let Some(pr) = prof.as_deref_mut() {
            let mut st = OpStats::flow(n, n);
            st.wall_micros = exec::tock(sort_start);
            pr.sort = Some(st);
        }
    }

    if p.distinct {
        let distinct_start = exec::tick(profiling);
        let rows_in = out_rows.len();
        let mut seen = HashSet::new();
        out_rows.retain(|r| seen.insert(exec::canonical_row(r)));
        if let Some(pr) = prof.as_deref_mut() {
            let mut st = OpStats::flow(rows_in, out_rows.len());
            st.wall_micros = exec::tock(distinct_start);
            pr.distinct = Some(st);
        }
    }

    if let Some(l) = p.limit {
        let rows_in = out_rows.len();
        out_rows.truncate(l as usize);
        if let Some(pr) = prof {
            pr.limit = Some(OpStats::flow(rows_in, out_rows.len()));
        }
    }

    Ok(ResultSet {
        columns: p.columns.clone(),
        rows: out_rows,
        ordered: need_sort,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_rows_override_nests_and_restores() {
        let outer = batch_rows();
        with_batch_rows(7, || {
            assert_eq!(batch_rows(), 7);
            with_batch_rows(1, || assert_eq!(batch_rows(), 1));
            assert_eq!(batch_rows(), 7);
        });
        assert_eq!(batch_rows(), outer);
        // zero clamps to one rather than dividing by zero
        with_batch_rows(0, || assert_eq!(batch_rows(), 1));
    }

    #[test]
    fn chunk_count_covers_empty_and_non_divisible_inputs() {
        with_batch_rows(4, || {
            assert_eq!(chunk_count(0), 1);
            assert_eq!(chunk_count(4), 1);
            assert_eq!(chunk_count(5), 2);
            assert_eq!(chunk_count(9), 3);
        });
    }

    #[test]
    fn merge_runs_cross_products_equal_runs_probe_major() {
        let pairs = merge_runs(&[1, 2, 2, 5], &[2, 2, 3, 5]);
        assert_eq!(
            pairs,
            vec![(1, 0), (1, 1), (2, 0), (2, 1), (3, 3)],
            "equal runs must pair every probe row with every build row"
        );
    }

    #[test]
    fn join_pairs_order_matches_the_legacy_probe_major_stream() {
        let prefix = vec![Some(1i64), None, Some(2), Some(1)];
        let new = vec![Some(2i64), Some(1), None, Some(1)];
        let (keys, nulls, pairs) = join_pairs(&prefix, &new, BuildSide::New);
        assert_eq!((keys, nulls), (2, 1));
        // prefix-major, bucket insertion order: the legacy row order.
        assert_eq!(pairs, vec![(0, 1), (0, 3), (2, 0), (3, 1), (3, 3)]);
        let (keys, nulls, flipped) = join_pairs(&prefix, &new, BuildSide::Prefix);
        assert_eq!((keys, nulls), (2, 1));
        let mut sorted = flipped.clone();
        sorted.sort_unstable();
        let mut expect = pairs.clone();
        expect.sort_unstable();
        assert_eq!(
            sorted, expect,
            "both build sides must emit the same pair set"
        );
    }
}
