//! SQL lexer.

use nli_core::{NliError, Result};

/// SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlToken {
    /// Keyword or identifier, stored lower-case; keyword-ness is decided by
    /// the parser in context.
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// Punctuation / operator.
    Symbol(Sym),
}

/// Operator and punctuation tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    Semicolon,
}

/// Lex a SQL string into tokens. Errors on unterminated strings and unknown
/// characters.
pub fn lex(input: &str) -> Result<Vec<SqlToken>> {
    let chars: Vec<char> = input.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c == '\'' {
            let mut s = String::new();
            let mut j = i + 1;
            loop {
                if j >= chars.len() {
                    return Err(NliError::Syntax("unterminated string literal".into()));
                }
                if chars[j] == '\'' {
                    if j + 1 < chars.len() && chars[j + 1] == '\'' {
                        s.push('\'');
                        j += 2;
                        continue;
                    }
                    break;
                }
                s.push(chars[j]);
                j += 1;
            }
            out.push(SqlToken::Str(s));
            i = j + 1;
        } else if c.is_ascii_digit()
            || (c == '.' && i + 1 < chars.len() && chars[i + 1].is_ascii_digit())
        {
            let start = i;
            let mut seen_dot = false;
            while i < chars.len() && (chars[i].is_ascii_digit() || (chars[i] == '.' && !seen_dot)) {
                if chars[i] == '.' {
                    // `1.x` where x is not a digit means `1` then `.`
                    if i + 1 >= chars.len() || !chars[i + 1].is_ascii_digit() {
                        break;
                    }
                    seen_dot = true;
                }
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            let n: f64 = text
                .parse()
                .map_err(|_| NliError::Syntax(format!("bad number: {text}")))?;
            out.push(SqlToken::Number(n));
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            out.push(SqlToken::Ident(text.to_lowercase()));
        } else {
            let sym = match c {
                '(' => Sym::LParen,
                ')' => Sym::RParen,
                ',' => Sym::Comma,
                '.' => Sym::Dot,
                '*' => Sym::Star,
                '+' => Sym::Plus,
                '-' => Sym::Minus,
                '/' => Sym::Slash,
                ';' => Sym::Semicolon,
                '=' => Sym::Eq,
                '!' => {
                    if i + 1 < chars.len() && chars[i + 1] == '=' {
                        i += 1;
                        Sym::Neq
                    } else {
                        return Err(NliError::Syntax("lone '!'".into()));
                    }
                }
                '<' => {
                    if i + 1 < chars.len() && chars[i + 1] == '=' {
                        i += 1;
                        Sym::Le
                    } else if i + 1 < chars.len() && chars[i + 1] == '>' {
                        i += 1;
                        Sym::Neq
                    } else {
                        Sym::Lt
                    }
                }
                '>' => {
                    if i + 1 < chars.len() && chars[i + 1] == '=' {
                        i += 1;
                        Sym::Ge
                    } else {
                        Sym::Gt
                    }
                }
                other => return Err(NliError::Syntax(format!("unexpected character: {other}"))),
            };
            out.push(SqlToken::Symbol(sym));
            i += 1;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_keywords_numbers_strings() {
        let toks = lex("SELECT name FROM t WHERE x >= 2.5 AND y = 'it''s'").unwrap();
        assert_eq!(toks[0], SqlToken::Ident("select".into()));
        assert!(toks.contains(&SqlToken::Number(2.5)));
        assert!(toks.contains(&SqlToken::Symbol(Sym::Ge)));
        assert!(toks.contains(&SqlToken::Str("it's".into())));
    }

    #[test]
    fn neq_spellings() {
        assert!(lex("a != b").unwrap().contains(&SqlToken::Symbol(Sym::Neq)));
        assert!(lex("a <> b").unwrap().contains(&SqlToken::Symbol(Sym::Neq)));
    }

    #[test]
    fn qualified_names_split_on_dot() {
        let toks = lex("t.col").unwrap();
        assert_eq!(
            toks,
            vec![
                SqlToken::Ident("t".into()),
                SqlToken::Symbol(Sym::Dot),
                SqlToken::Ident("col".into()),
            ]
        );
    }

    #[test]
    fn rejects_unterminated_string_and_bad_char() {
        assert!(lex("'oops").is_err());
        assert!(lex("a ? b").is_err());
        assert!(lex("a ! b").is_err());
    }

    #[test]
    fn count_star() {
        let toks = lex("COUNT(*)").unwrap();
        assert_eq!(
            toks,
            vec![
                SqlToken::Ident("count".into()),
                SqlToken::Symbol(Sym::LParen),
                SqlToken::Symbol(Sym::Star),
                SqlToken::Symbol(Sym::RParen),
            ]
        );
    }
}
