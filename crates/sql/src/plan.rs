//! Logical query plans: schema-bound, database-independent.
//!
//! [`plan_query`] compiles an AST [`Query`] against a [`Schema`] into a
//! [`QueryPlan`]: every column reference is resolved to an offset in the
//! joined row, join conditions become explicit [`JoinStep::Hash`] operators,
//! and single-table WHERE conjuncts are pushed below the join into their
//! [`ScanNode`]. Because a plan never touches row *data*, one plan can
//! execute against any database whose schema shares the same
//! [`Schema::fingerprint`] — the property the prepared-query cache and
//! test-suite evaluation are built on.
//!
//! Two planning rules do the heavy lifting:
//!
//! 1. **Join-condition extraction.** Explicit `JOIN ... ON a = b` conditions
//!    and top-level `WHERE` conjuncts of the shape `t1.x = t2.y` both
//!    become hash joins, so the comma-FROM spelling (`FROM a, b WHERE
//!    a.x = b.y`) no longer pays for a cartesian product.
//! 2. **Predicate pushdown.** A remaining conjunct that mentions only one
//!    FROM entry (and no subquery or aggregate) filters that table's scan
//!    before the join instead of the joined stream after it.

use crate::ast::{AggFunc, BinOp, ColName, Expr, Query, Select, SetOp};
use nli_core::{DataType, NliError, Result, Schema, Value};

/// A bound expression: structurally an [`Expr`], but with every column
/// resolved to a row offset and every subquery compiled to its own plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanExpr {
    /// Offset into the joined row.
    Col(usize),
    Literal(Value),
    /// `*` — legal only as the sole select item or inside `COUNT(*)`.
    Star,
    Agg {
        func: AggFunc,
        arg: Box<PlanExpr>,
        distinct: bool,
    },
    Binary {
        left: Box<PlanExpr>,
        op: BinOp,
        right: Box<PlanExpr>,
    },
    Not(Box<PlanExpr>),
    Like {
        expr: Box<PlanExpr>,
        pattern: String,
        negated: bool,
    },
    Between {
        expr: Box<PlanExpr>,
        low: Box<PlanExpr>,
        high: Box<PlanExpr>,
        negated: bool,
    },
    InList {
        expr: Box<PlanExpr>,
        list: Vec<Value>,
        negated: bool,
    },
    /// `IN (SELECT ...)` with the subquery compiled; materialized to an
    /// [`PlanExpr::InList`] per database at execution time.
    InPlan {
        expr: Box<PlanExpr>,
        plan: Box<QueryPlan>,
        negated: bool,
    },
    /// Scalar subquery, materialized to a [`PlanExpr::Literal`] per
    /// database at execution time.
    ScalarPlan(Box<QueryPlan>),
    IsNull {
        expr: Box<PlanExpr>,
        negated: bool,
    },
}

impl PlanExpr {
    /// Visit every node (pre-order).
    fn visit(&self, f: &mut impl FnMut(&PlanExpr)) {
        f(self);
        match self {
            PlanExpr::Agg { arg: e, .. }
            | PlanExpr::Not(e)
            | PlanExpr::Like { expr: e, .. }
            | PlanExpr::InList { expr: e, .. }
            | PlanExpr::InPlan { expr: e, .. }
            | PlanExpr::IsNull { expr: e, .. } => e.visit(f),
            PlanExpr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            PlanExpr::Between {
                expr, low, high, ..
            } => {
                expr.visit(f);
                low.visit(f);
                high.visit(f);
            }
            PlanExpr::Col(_) | PlanExpr::Literal(_) | PlanExpr::Star | PlanExpr::ScalarPlan(_) => {}
        }
    }

    /// Rewrite every column offset (used to rebase pushed-down predicates
    /// to table-local offsets).
    fn map_cols(self, f: &impl Fn(usize) -> usize) -> PlanExpr {
        match self {
            PlanExpr::Col(o) => PlanExpr::Col(f(o)),
            PlanExpr::Agg {
                func,
                arg,
                distinct,
            } => PlanExpr::Agg {
                func,
                arg: Box::new(arg.map_cols(f)),
                distinct,
            },
            PlanExpr::Binary { left, op, right } => PlanExpr::Binary {
                left: Box::new(left.map_cols(f)),
                op,
                right: Box::new(right.map_cols(f)),
            },
            PlanExpr::Not(e) => PlanExpr::Not(Box::new(e.map_cols(f))),
            PlanExpr::Like {
                expr,
                pattern,
                negated,
            } => PlanExpr::Like {
                expr: Box::new(expr.map_cols(f)),
                pattern,
                negated,
            },
            PlanExpr::Between {
                expr,
                low,
                high,
                negated,
            } => PlanExpr::Between {
                expr: Box::new(expr.map_cols(f)),
                low: Box::new(low.map_cols(f)),
                high: Box::new(high.map_cols(f)),
                negated,
            },
            PlanExpr::InList {
                expr,
                list,
                negated,
            } => PlanExpr::InList {
                expr: Box::new(expr.map_cols(f)),
                list,
                negated,
            },
            PlanExpr::InPlan {
                expr,
                plan,
                negated,
            } => PlanExpr::InPlan {
                expr: Box::new(expr.map_cols(f)),
                plan,
                negated,
            },
            other @ (PlanExpr::Literal(_) | PlanExpr::Star | PlanExpr::ScalarPlan(_)) => other,
            PlanExpr::IsNull { expr, negated } => PlanExpr::IsNull {
                expr: Box::new(expr.map_cols(f)),
                negated,
            },
        }
    }

    /// Column offsets referenced anywhere in this expression.
    fn col_offsets(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let PlanExpr::Col(o) = e {
                out.push(*o);
            }
        });
        out
    }

    pub(crate) fn has_subplan(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, PlanExpr::InPlan { .. } | PlanExpr::ScalarPlan(_)) {
                found = true;
            }
        });
        found
    }

    /// Number of compiled subquery nodes (the `subplans` OpStats counter).
    pub(crate) fn count_subplans(&self) -> u64 {
        let mut n = 0;
        self.visit(&mut |e| {
            if matches!(e, PlanExpr::InPlan { .. } | PlanExpr::ScalarPlan(_)) {
                n += 1;
            }
        });
        n
    }

    fn has_aggregate(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, PlanExpr::Agg { .. }) {
                found = true;
            }
        });
        found
    }
}

/// One base-table access: which table, where its columns land in the joined
/// row, and the predicate (over *table-local* offsets) applied during the
/// scan.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanNode {
    /// Index into `schema.tables`.
    pub table: usize,
    /// The scanned table's name, captured at plan time so EXPLAIN can
    /// print the tree without re-consulting a schema.
    pub table_name: String,
    /// Column offset of this table's first column in the joined row.
    pub offset: usize,
    /// Number of columns.
    pub width: usize,
    /// Pushed-down filter over this table's own columns (offsets 0..width).
    pub filter: Option<PlanExpr>,
}

/// How FROM entry `i` (for `i >= 1`) connects to the already-joined prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStep {
    /// Equi-join: build a hash table over the new table keyed on its
    /// `build_col` (table-local), probe with the prefix row's `probe_off`.
    Hash { probe_off: usize, build_col: usize },
    /// No connecting condition found: cartesian product.
    Cross,
}

/// Sort key: bound expression plus direction.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    pub expr: PlanExpr,
    pub desc: bool,
}

/// A compiled SELECT block.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectPlan {
    pub scans: Vec<ScanNode>,
    /// One step per scan after the first (`joins.len() == scans.len() - 1`).
    pub joins: Vec<JoinStep>,
    /// WHERE conjuncts that survived extraction and pushdown, re-folded
    /// with AND; evaluated against the joined row.
    pub residual: Option<PlanExpr>,
    /// Whether the query is grouped/aggregated (same detection rule the
    /// AST interpreter uses).
    pub aggregate: bool,
    pub group_by: Vec<PlanExpr>,
    pub having: Option<PlanExpr>,
    /// `SELECT *` as the only item (projection is the identity).
    pub star: bool,
    pub items: Vec<PlanExpr>,
    /// Output column names, fixed at plan time.
    pub columns: Vec<String>,
    /// Name of every column of the joined row (qualified when ambiguous
    /// across FROM entries); lets EXPLAIN print bound offsets as names.
    pub joined_columns: Vec<String>,
    pub order_by: Vec<SortKey>,
    pub distinct: bool,
    pub limit: Option<u64>,
}

/// A compiled query: a select plan plus optional compound set operation.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    pub select: SelectPlan,
    pub compound: Option<(SetOp, Box<QueryPlan>)>,
}

impl QueryPlan {
    /// Number of output columns.
    pub fn arity(&self) -> usize {
        self.select.columns.len()
    }
}

/// Compile `q` against `schema`. All name resolution happens here;
/// execution never consults names again.
pub fn plan_query(q: &Query, schema: &Schema) -> Result<QueryPlan> {
    let select = plan_select(&q.select, schema)?;
    let compound = match &q.compound {
        Some((op, rhs)) => Some((*op, Box::new(plan_query(rhs, schema)?))),
        None => None,
    };
    Ok(QueryPlan { select, compound })
}

/// Plan-time binding environment; the schema-only analogue of the
/// interpreter's row scope.
struct Binder<'a> {
    schema: &'a Schema,
    /// `(lowercased FROM name, schema table index, column offset)`.
    bound: Vec<(String, usize, usize)>,
    width: usize,
}

impl<'a> Binder<'a> {
    fn bind(schema: &'a Schema, select: &Select) -> Result<Binder<'a>> {
        let mut bound = Vec::new();
        let mut offset = 0;
        for t in &select.from {
            let ti = schema
                .table_index(&t.name)
                .ok_or_else(|| NliError::UnknownTable(t.name.clone()))?;
            bound.push((t.name.to_lowercase(), ti, offset));
            offset += schema.tables[ti].columns.len();
        }
        Ok(Binder {
            schema,
            bound,
            width: offset,
        })
    }

    /// Resolve a column name to an offset in the joined row; same rules as
    /// the interpreter (qualified names match the FROM spelling, unqualified
    /// names must be unambiguous across FROM entries).
    fn resolve(&self, c: &ColName) -> Result<usize> {
        match &c.table {
            Some(t) => {
                let (_, ti, off) = self
                    .bound
                    .iter()
                    .find(|(name, _, _)| name == &t.to_lowercase())
                    .ok_or_else(|| NliError::UnknownTable(t.clone()))?;
                let ci = self.schema.tables[*ti]
                    .column_index(&c.column)
                    .ok_or_else(|| NliError::UnknownColumn(format!("{t}.{}", c.column)))?;
                Ok(off + ci)
            }
            None => {
                let mut hit = None;
                for (_, ti, off) in &self.bound {
                    if let Some(ci) = self.schema.tables[*ti].column_index(&c.column) {
                        if hit.is_some() {
                            return Err(NliError::AmbiguousColumn(c.column.clone()));
                        }
                        hit = Some(off + ci);
                    }
                }
                hit.ok_or_else(|| NliError::UnknownColumn(c.column.clone()))
            }
        }
    }

    /// Data type of the column at a joined-row offset.
    fn dtype_at(&self, offset: usize) -> DataType {
        for (_, ti, off) in self.bound.iter().rev() {
            if offset >= *off {
                return self.schema.tables[*ti].columns[offset - off].dtype;
            }
        }
        unreachable!("offset outside bound range")
    }

    /// FROM-entry index whose column range contains `offset`.
    fn entry_of(&self, offset: usize) -> usize {
        for (i, (_, _, off)) in self.bound.iter().enumerate().rev() {
            if offset >= *off {
                return i;
            }
        }
        unreachable!("offset outside bound range")
    }

    /// All output column names for `SELECT *`, qualified when ambiguous.
    fn output_columns(&self) -> Vec<String> {
        let mut counts: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
        for (_, ti, _) in &self.bound {
            for c in &self.schema.tables[*ti].columns {
                *counts.entry(c.name.as_str()).or_insert(0) += 1;
            }
        }
        let mut out = Vec::with_capacity(self.width);
        for (name, ti, _) in &self.bound {
            for c in &self.schema.tables[*ti].columns {
                if counts[c.name.as_str()] > 1 {
                    out.push(format!("{name}.{}", c.name));
                } else {
                    out.push(c.name.clone());
                }
            }
        }
        out
    }

    /// Bind an AST expression: resolve columns, compile subqueries.
    fn bind_expr(&self, e: &Expr) -> Result<PlanExpr> {
        Ok(match e {
            Expr::Column(c) => PlanExpr::Col(self.resolve(c)?),
            Expr::Literal(v) => PlanExpr::Literal(v.clone()),
            Expr::Star => PlanExpr::Star,
            Expr::Agg {
                func,
                arg,
                distinct,
            } => PlanExpr::Agg {
                func: *func,
                arg: Box::new(self.bind_expr(arg)?),
                distinct: *distinct,
            },
            Expr::Binary { left, op, right } => PlanExpr::Binary {
                left: Box::new(self.bind_expr(left)?),
                op: *op,
                right: Box::new(self.bind_expr(right)?),
            },
            Expr::Not(inner) => PlanExpr::Not(Box::new(self.bind_expr(inner)?)),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => PlanExpr::Like {
                expr: Box::new(self.bind_expr(expr)?),
                pattern: pattern.clone(),
                negated: *negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => PlanExpr::Between {
                expr: Box::new(self.bind_expr(expr)?),
                low: Box::new(self.bind_expr(low)?),
                high: Box::new(self.bind_expr(high)?),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => PlanExpr::InList {
                expr: Box::new(self.bind_expr(expr)?),
                list: list.clone(),
                negated: *negated,
            },
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => PlanExpr::InPlan {
                expr: Box::new(self.bind_expr(expr)?),
                plan: Box::new(plan_query(query, self.schema)?),
                negated: *negated,
            },
            Expr::ScalarSubquery(q) => PlanExpr::ScalarPlan(Box::new(plan_query(q, self.schema)?)),
            Expr::IsNull { expr, negated } => PlanExpr::IsNull {
                expr: Box::new(self.bind_expr(expr)?),
                negated: *negated,
            },
        })
    }
}

/// Flatten a WHERE tree into its top-level AND conjuncts (in evaluation
/// order).
fn flatten_and<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    match e {
        Expr::Binary {
            left,
            op: BinOp::And,
            right,
        } => {
            flatten_and(left, out);
            flatten_and(right, out);
        }
        other => out.push(other),
    }
}

/// `col = col` shape, the candidate for hash-join extraction.
fn as_column_equality(e: &Expr) -> Option<(&ColName, &ColName)> {
    match e {
        Expr::Binary {
            left,
            op: BinOp::Eq,
            right,
        } => match (left.as_ref(), right.as_ref()) {
            (Expr::Column(a), Expr::Column(b)) => Some((a, b)),
            _ => None,
        },
        _ => None,
    }
}

/// Whether an equality on these column types can be keyed by
/// [`Value::canonical`] without changing semantics: same type always works,
/// and Int/Float mix works because integral floats canonicalize to the
/// integer spelling. Mixed text/number stays a residual filter (SQL `=`
/// calls those incomparable; a canonical hash key would not).
fn hash_compatible(a: DataType, b: DataType) -> bool {
    a == b || (a.is_numeric() && b.is_numeric())
}

fn plan_select(select: &Select, schema: &Schema) -> Result<SelectPlan> {
    let binder = Binder::bind(schema, select)?;
    let n = binder.bound.len();

    let mut conjuncts: Vec<&Expr> = Vec::new();
    if let Some(w) = &select.where_clause {
        flatten_and(w, &mut conjuncts);
    }
    let mut used = vec![false; conjuncts.len()];

    // -- Join planning ------------------------------------------------------
    // For each FROM entry after the first, find an equi-join condition
    // connecting it to the joined prefix: explicit ON conditions first
    // (mirroring the interpreter's probe order exactly), then top-level
    // WHERE conjuncts of the shape `prefix_col = new_col`.
    let mut joins = Vec::with_capacity(n.saturating_sub(1));
    for i in 1..n {
        let new_off = binder.bound[i].2;
        let new_width = schema.tables[binder.bound[i].1].columns.len();
        let new_range = new_off..new_off + new_width;
        let prefix_width = new_off;

        let mut step = None;
        for j in &select.joins {
            let l = binder.resolve(&j.left)?;
            let r = binder.resolve(&j.right)?;
            let (inner, outer) = if new_range.contains(&l) {
                (l, r)
            } else if new_range.contains(&r) {
                (r, l)
            } else {
                continue;
            };
            if outer < prefix_width {
                step = Some(JoinStep::Hash {
                    probe_off: outer,
                    build_col: inner - new_off,
                });
                break;
            }
        }
        if step.is_none() {
            for (ci, c) in conjuncts.iter().enumerate() {
                if used[ci] {
                    continue;
                }
                let Some((a, b)) = as_column_equality(c) else {
                    continue;
                };
                let (l, r) = (binder.resolve(a)?, binder.resolve(b)?);
                let (inner, outer) = if new_range.contains(&l) && r < prefix_width {
                    (l, r)
                } else if new_range.contains(&r) && l < prefix_width {
                    (r, l)
                } else {
                    continue;
                };
                if hash_compatible(binder.dtype_at(inner), binder.dtype_at(outer)) {
                    step = Some(JoinStep::Hash {
                        probe_off: outer,
                        build_col: inner - new_off,
                    });
                    used[ci] = true;
                    break;
                }
            }
        }
        joins.push(step.unwrap_or(JoinStep::Cross));
    }

    // -- Predicate pushdown -------------------------------------------------
    // Bind the surviving conjuncts; a conjunct that references exactly one
    // FROM entry (and no subquery or aggregate) filters that entry's scan.
    let mut scan_filters: Vec<Vec<PlanExpr>> = vec![Vec::new(); n];
    let mut residual_parts: Vec<PlanExpr> = Vec::new();
    for (ci, c) in conjuncts.iter().enumerate() {
        if used[ci] {
            continue;
        }
        let bound = binder.bind_expr(c)?;
        let offsets = bound.col_offsets();
        let single_entry = match offsets.as_slice() {
            [] => None,
            [first, rest @ ..] => {
                let entry = binder.entry_of(*first);
                rest.iter()
                    .all(|o| binder.entry_of(*o) == entry)
                    .then_some(entry)
            }
        };
        match single_entry {
            Some(k) if !bound.has_subplan() && !bound.has_aggregate() => {
                let base = binder.bound[k].2;
                scan_filters[k].push(bound.map_cols(&|o| o - base));
            }
            _ => residual_parts.push(bound),
        }
    }
    let residual = residual_parts
        .into_iter()
        .reduce(|acc, next| PlanExpr::Binary {
            left: Box::new(acc),
            op: BinOp::And,
            right: Box::new(next),
        });

    let scans = binder
        .bound
        .iter()
        .map(|(_, ti, off)| {
            let width = schema.tables[*ti].columns.len();
            let filter = scan_filters[binder.entry_of(*off)]
                .clone()
                .into_iter()
                .reduce(|acc, next| PlanExpr::Binary {
                    left: Box::new(acc),
                    op: BinOp::And,
                    right: Box::new(next),
                });
            ScanNode {
                table: *ti,
                table_name: schema.tables[*ti].name.clone(),
                offset: *off,
                width,
                filter,
            }
        })
        .collect::<Vec<_>>();

    // -- Aggregation, projection, ordering ----------------------------------
    let aggregate = !select.group_by.is_empty()
        || select.items.iter().any(|i| i.expr.contains_aggregate())
        || select
            .having
            .as_ref()
            .is_some_and(|h| h.contains_aggregate());

    let group_by = select
        .group_by
        .iter()
        .map(|g| binder.bind_expr(g))
        .collect::<Result<Vec<_>>>()?;
    let having = select
        .having
        .as_ref()
        .map(|h| binder.bind_expr(h))
        .transpose()?;

    let star = !aggregate && select.items.len() == 1 && matches!(select.items[0].expr, Expr::Star);
    let mut columns = Vec::with_capacity(select.items.len());
    let mut items = Vec::with_capacity(select.items.len());
    if star {
        columns = binder.output_columns();
        items.push(PlanExpr::Star);
    } else {
        for item in &select.items {
            if !aggregate && matches!(item.expr, Expr::Star) {
                return Err(NliError::Execution(
                    "`*` must be the only select item".into(),
                ));
            }
            columns.push(
                item.alias
                    .clone()
                    .unwrap_or_else(|| item.expr.to_string().to_lowercase()),
            );
            items.push(binder.bind_expr(&item.expr)?);
        }
    }

    let order_by = select
        .order_by
        .iter()
        .map(|o| {
            Ok(SortKey {
                expr: binder.bind_expr(&o.expr)?,
                desc: o.desc,
            })
        })
        .collect::<Result<Vec<_>>>()?;

    Ok(SelectPlan {
        scans,
        joins,
        residual,
        aggregate,
        group_by,
        having,
        star,
        items,
        columns,
        joined_columns: binder.output_columns(),
        order_by,
        distinct: select.distinct,
        limit: select.limit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use nli_core::{Column, Schema, Table};

    fn schema() -> Schema {
        let mut s = Schema::new(
            "shop",
            vec![
                Table::new(
                    "products",
                    vec![
                        Column::new("id", DataType::Int).primary(),
                        Column::new("name", DataType::Text),
                        Column::new("category", DataType::Text),
                        Column::new("price", DataType::Float),
                    ],
                ),
                Table::new(
                    "sales",
                    vec![
                        Column::new("id", DataType::Int).primary(),
                        Column::new("product_id", DataType::Int),
                        Column::new("amount", DataType::Float),
                    ],
                ),
            ],
        );
        s.add_foreign_key("sales", "product_id", "products", "id")
            .unwrap();
        s
    }

    fn plan(sql: &str) -> QueryPlan {
        plan_query(&parse_query(sql).unwrap(), &schema()).unwrap()
    }

    #[test]
    fn explicit_join_becomes_hash_step() {
        let p =
            plan("SELECT products.name FROM sales JOIN products ON sales.product_id = products.id");
        // sales occupies offsets 0..3, products 3..7
        assert_eq!(
            p.select.joins,
            vec![JoinStep::Hash {
                probe_off: 1,
                build_col: 0
            }]
        );
        assert!(p.select.residual.is_none());
    }

    #[test]
    fn where_equijoin_is_extracted_into_hash_step() {
        let p =
            plan("SELECT products.name FROM sales, products WHERE sales.product_id = products.id");
        assert_eq!(
            p.select.joins,
            vec![JoinStep::Hash {
                probe_off: 1,
                build_col: 0
            }]
        );
        assert!(
            p.select.residual.is_none(),
            "the extracted conjunct must leave the WHERE clause"
        );
    }

    #[test]
    fn single_table_predicates_push_into_the_scan() {
        let p = plan(
            "SELECT products.name FROM sales, products \
             WHERE sales.product_id = products.id AND products.price > 10 AND sales.amount < 5",
        );
        assert_eq!(p.select.joins.len(), 1);
        assert!(matches!(p.select.joins[0], JoinStep::Hash { .. }));
        assert!(p.select.residual.is_none());
        // sales scan keeps `amount < 5` rebased to its own offsets
        let sales_filter = p.select.scans[0].filter.as_ref().unwrap();
        assert_eq!(sales_filter.col_offsets(), vec![2]);
        // products scan keeps `price > 10` rebased to its own offsets
        let products_filter = p.select.scans[1].filter.as_ref().unwrap();
        assert_eq!(products_filter.col_offsets(), vec![3]);
    }

    #[test]
    fn cross_entry_disjunction_stays_residual() {
        let p = plan(
            "SELECT products.name FROM sales JOIN products ON sales.product_id = products.id \
             WHERE products.price > 10 OR sales.amount < 5",
        );
        assert!(p.select.scans.iter().all(|s| s.filter.is_none()));
        assert!(p.select.residual.is_some());
    }

    #[test]
    fn text_number_equality_is_not_extracted() {
        // name = id is incomparable under SQL `=` (always filters all rows);
        // keying a hash join on canonical text would wrongly match "1" to 1.
        let p = plan("SELECT products.name FROM sales, products WHERE products.name = sales.id");
        assert_eq!(p.select.joins, vec![JoinStep::Cross]);
        assert!(p.select.residual.is_some());
    }

    #[test]
    fn subquery_conjunct_is_never_pushed_down() {
        let p = plan(
            "SELECT name FROM products WHERE id IN (SELECT product_id FROM sales) \
             AND price > 1",
        );
        // `price > 1` pushes into the scan; the IN-subquery stays residual
        // for per-database materialization.
        assert!(p.select.scans[0].filter.is_some());
        let residual = p.select.residual.as_ref().unwrap();
        assert!(residual.has_subplan());
    }

    #[test]
    fn plan_is_schema_bound_and_errors_at_plan_time() {
        let q = parse_query("SELECT nope FROM products").unwrap();
        assert!(matches!(
            plan_query(&q, &schema()),
            Err(NliError::UnknownColumn(_))
        ));
        let q = parse_query("SELECT id FROM sales JOIN products ON sales.product_id = products.id")
            .unwrap();
        assert!(matches!(
            plan_query(&q, &schema()),
            Err(NliError::AmbiguousColumn(_))
        ));
    }

    #[test]
    fn columns_are_fixed_at_plan_time() {
        let p = plan("SELECT name, SUM(price) AS total FROM products GROUP BY name");
        assert_eq!(p.select.columns, vec!["name", "total"]);
        assert!(p.select.aggregate);
        let p = plan("SELECT * FROM sales JOIN products ON sales.product_id = products.id");
        // `id` appears in both tables → qualified; others stay bare
        assert_eq!(
            p.select.columns,
            vec![
                "sales.id",
                "product_id",
                "amount",
                "products.id",
                "name",
                "category",
                "price"
            ]
        );
    }

    #[test]
    fn set_op_arity_is_visible_on_the_plan() {
        let p = plan("SELECT id, name FROM products UNION SELECT id, amount FROM sales");
        assert_eq!(p.arity(), 2);
        let (op, rhs) = p.compound.as_ref().unwrap();
        assert_eq!(*op, SetOp::Union);
        assert_eq!(rhs.arity(), 2);
    }
}
