//! Logical query plans: schema-bound, database-independent.
//!
//! [`plan_query`] compiles an AST [`Query`] against a [`Schema`] into a
//! [`QueryPlan`]: every column reference is resolved to an offset in the
//! joined row, join conditions become explicit [`JoinStep`] operators ([`JoinKind::Hash`]),
//! and single-table WHERE conjuncts are pushed below the join into their
//! [`ScanNode`]. Because a plan never touches row *data*, one plan can
//! execute against any database whose schema shares the same
//! [`Schema::fingerprint`] — the property the prepared-query cache and
//! test-suite evaluation are built on.
//!
//! Two planning rules do the heavy lifting:
//!
//! 1. **Join-condition extraction.** Explicit `JOIN ... ON a = b` conditions
//!    and top-level `WHERE` conjuncts of the shape `t1.x = t2.y` both
//!    become equi-join steps, so the comma-FROM spelling (`FROM a, b WHERE
//!    a.x = b.y`) no longer pays for a cartesian product.
//! 2. **Predicate pushdown.** A remaining conjunct that mentions only one
//!    FROM entry (and no subquery or aggregate) filters that table's scan
//!    before the join instead of the joined stream after it.
//!
//! On top of the rule-based plan, [`plan_query_with_stats`] runs a
//! **cost-based pass** over table statistics ([`nli_core::DatabaseStats`]):
//! it estimates each scan's output cardinality from per-column
//! NDV/min/max, then greedily reorders join execution
//! ([`SelectPlan::exec_order`]), picks the hash build side, and upgrades
//! an eligible first join to a sort-merge strategy. The cost pass only
//! *reorders* the join edges the rules extracted — the predicate set,
//! pushdown, and residual are byte-identical to the rule-based plan, which
//! is what makes the two plans result-equivalent by construction (the
//! executor restores row order afterwards; see `vexec`).

use crate::ast::{AggFunc, BinOp, ColName, Expr, Query, Select, SetOp};
use nli_core::{DataType, DatabaseStats, NliError, Result, Schema, TableStats, Value};

/// A bound expression: structurally an [`Expr`], but with every column
/// resolved to a row offset and every subquery compiled to its own plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanExpr {
    /// Offset into the joined row.
    Col(usize),
    Literal(Value),
    /// `*` — legal only as the sole select item or inside `COUNT(*)`.
    Star,
    Agg {
        func: AggFunc,
        arg: Box<PlanExpr>,
        distinct: bool,
    },
    Binary {
        left: Box<PlanExpr>,
        op: BinOp,
        right: Box<PlanExpr>,
    },
    Not(Box<PlanExpr>),
    Like {
        expr: Box<PlanExpr>,
        pattern: String,
        negated: bool,
    },
    Between {
        expr: Box<PlanExpr>,
        low: Box<PlanExpr>,
        high: Box<PlanExpr>,
        negated: bool,
    },
    InList {
        expr: Box<PlanExpr>,
        list: Vec<Value>,
        negated: bool,
    },
    /// `IN (SELECT ...)` with the subquery compiled; materialized to an
    /// [`PlanExpr::InList`] per database at execution time.
    InPlan {
        expr: Box<PlanExpr>,
        plan: Box<QueryPlan>,
        negated: bool,
    },
    /// Scalar subquery, materialized to a [`PlanExpr::Literal`] per
    /// database at execution time.
    ScalarPlan(Box<QueryPlan>),
    IsNull {
        expr: Box<PlanExpr>,
        negated: bool,
    },
}

impl PlanExpr {
    /// Visit every node (pre-order).
    fn visit(&self, f: &mut impl FnMut(&PlanExpr)) {
        f(self);
        match self {
            PlanExpr::Agg { arg: e, .. }
            | PlanExpr::Not(e)
            | PlanExpr::Like { expr: e, .. }
            | PlanExpr::InList { expr: e, .. }
            | PlanExpr::InPlan { expr: e, .. }
            | PlanExpr::IsNull { expr: e, .. } => e.visit(f),
            PlanExpr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            PlanExpr::Between {
                expr, low, high, ..
            } => {
                expr.visit(f);
                low.visit(f);
                high.visit(f);
            }
            PlanExpr::Col(_) | PlanExpr::Literal(_) | PlanExpr::Star | PlanExpr::ScalarPlan(_) => {}
        }
    }

    /// Rewrite every column offset (used to rebase pushed-down predicates
    /// to table-local offsets).
    fn map_cols(self, f: &impl Fn(usize) -> usize) -> PlanExpr {
        match self {
            PlanExpr::Col(o) => PlanExpr::Col(f(o)),
            PlanExpr::Agg {
                func,
                arg,
                distinct,
            } => PlanExpr::Agg {
                func,
                arg: Box::new(arg.map_cols(f)),
                distinct,
            },
            PlanExpr::Binary { left, op, right } => PlanExpr::Binary {
                left: Box::new(left.map_cols(f)),
                op,
                right: Box::new(right.map_cols(f)),
            },
            PlanExpr::Not(e) => PlanExpr::Not(Box::new(e.map_cols(f))),
            PlanExpr::Like {
                expr,
                pattern,
                negated,
            } => PlanExpr::Like {
                expr: Box::new(expr.map_cols(f)),
                pattern,
                negated,
            },
            PlanExpr::Between {
                expr,
                low,
                high,
                negated,
            } => PlanExpr::Between {
                expr: Box::new(expr.map_cols(f)),
                low: Box::new(low.map_cols(f)),
                high: Box::new(high.map_cols(f)),
                negated,
            },
            PlanExpr::InList {
                expr,
                list,
                negated,
            } => PlanExpr::InList {
                expr: Box::new(expr.map_cols(f)),
                list,
                negated,
            },
            PlanExpr::InPlan {
                expr,
                plan,
                negated,
            } => PlanExpr::InPlan {
                expr: Box::new(expr.map_cols(f)),
                plan,
                negated,
            },
            other @ (PlanExpr::Literal(_) | PlanExpr::Star | PlanExpr::ScalarPlan(_)) => other,
            PlanExpr::IsNull { expr, negated } => PlanExpr::IsNull {
                expr: Box::new(expr.map_cols(f)),
                negated,
            },
        }
    }

    /// Column offsets referenced anywhere in this expression.
    fn col_offsets(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let PlanExpr::Col(o) = e {
                out.push(*o);
            }
        });
        out
    }

    pub(crate) fn has_subplan(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, PlanExpr::InPlan { .. } | PlanExpr::ScalarPlan(_)) {
                found = true;
            }
        });
        found
    }

    /// Number of compiled subquery nodes (the `subplans` OpStats counter).
    pub(crate) fn count_subplans(&self) -> u64 {
        let mut n = 0;
        self.visit(&mut |e| {
            if matches!(e, PlanExpr::InPlan { .. } | PlanExpr::ScalarPlan(_)) {
                n += 1;
            }
        });
        n
    }

    fn has_aggregate(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, PlanExpr::Agg { .. }) {
                found = true;
            }
        });
        found
    }
}

/// One base-table access: which table, where its columns land in the joined
/// row, and the predicate (over *table-local* offsets) applied during the
/// scan.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanNode {
    /// Index into `schema.tables`.
    pub table: usize,
    /// The scanned table's name, captured at plan time so EXPLAIN can
    /// print the tree without re-consulting a schema.
    pub table_name: String,
    /// Column offset of this table's first column in the joined row.
    pub offset: usize,
    /// Number of columns.
    pub width: usize,
    /// Pushed-down filter over this table's own columns (offsets 0..width).
    pub filter: Option<PlanExpr>,
    /// Planner estimate of rows surviving the scan filter; `None` for
    /// rule-based plans (no statistics consulted).
    pub est_rows: Option<u64>,
}

/// Which input of a hash join the hash table is built over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildSide {
    /// Build over the newly attached table (the rule-based default).
    New,
    /// Build over the already-joined prefix — cost-chosen when the prefix
    /// is estimated smaller than the table being attached.
    Prefix,
}

/// Physical strategy of one join step. Key columns are named the same way
/// in every variant: `probe_off` is the prefix-side key as an offset into
/// the *rule-based* joined row (resolvable to a FROM entry via the scans),
/// `build_col` is table-local to the attached entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Equi-join via hash table.
    Hash {
        probe_off: usize,
        build_col: usize,
        build_side: BuildSide,
    },
    /// Equi-join by merging two sorted inputs. Planned only when
    /// statistics say both key columns are stored in ascending NULL-free
    /// order; the executor re-verifies at run time and falls back to a
    /// hash join if the data has since changed.
    Merge { probe_off: usize, build_col: usize },
    /// No connecting condition found: cartesian product.
    Cross,
}

/// How execution step `k` attaches FROM entry `exec_order[k + 1]` to the
/// already-joined prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinStep {
    pub kind: JoinKind,
    /// Planner estimate of the joined prefix's cardinality after this
    /// step; `None` for rule-based plans.
    pub est_rows: Option<u64>,
}

/// Sort key: bound expression plus direction.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    pub expr: PlanExpr,
    pub desc: bool,
}

/// A compiled SELECT block.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectPlan {
    pub scans: Vec<ScanNode>,
    /// Join *execution* order: a permutation of `0..scans.len()`. Execution
    /// starts from `scans[exec_order[0]]` and step `k` attaches
    /// `scans[exec_order[k + 1]]`. Rule-based plans use the identity
    /// (FROM order); the cost-based planner reorders. Output row order is
    /// FROM-order regardless (the executor restores it).
    pub exec_order: Vec<usize>,
    /// One step per scan after the first (`joins.len() == scans.len() - 1`),
    /// in *execution* order: `joins[k]` attaches `scans[exec_order[k + 1]]`.
    pub joins: Vec<JoinStep>,
    /// WHERE conjuncts that survived extraction and pushdown, re-folded
    /// with AND; evaluated against the joined row.
    pub residual: Option<PlanExpr>,
    /// Whether the query is grouped/aggregated (same detection rule the
    /// AST interpreter uses).
    pub aggregate: bool,
    pub group_by: Vec<PlanExpr>,
    pub having: Option<PlanExpr>,
    /// `SELECT *` as the only item (projection is the identity).
    pub star: bool,
    pub items: Vec<PlanExpr>,
    /// Output column names, fixed at plan time.
    pub columns: Vec<String>,
    /// Name of every column of the joined row (qualified when ambiguous
    /// across FROM entries); lets EXPLAIN print bound offsets as names.
    pub joined_columns: Vec<String>,
    pub order_by: Vec<SortKey>,
    pub distinct: bool,
    pub limit: Option<u64>,
}

/// A compiled query: a select plan plus optional compound set operation.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    pub select: SelectPlan,
    pub compound: Option<(SetOp, Box<QueryPlan>)>,
}

impl QueryPlan {
    /// Number of output columns.
    pub fn arity(&self) -> usize {
        self.select.columns.len()
    }
}

/// Compile `q` against `schema`. All name resolution happens here;
/// execution never consults names again.
pub fn plan_query(q: &Query, schema: &Schema) -> Result<QueryPlan> {
    plan_query_inner(q, schema, None)
}

/// Compile `q` with the cost-based pass enabled: identical predicate
/// extraction and pushdown to [`plan_query`], but join execution order,
/// strategy, and build side are chosen from `stats`, and scans and joins
/// carry cardinality estimates for `EXPLAIN`. The resulting plan is only
/// valid to *reuse* for databases at the same stats epoch (key the plan
/// cache on it; see [`nli_core::Database::stats_epoch`]) — though running
/// it against any same-schema database still produces correct results,
/// because cost choices never change query semantics.
pub fn plan_query_with_stats(
    q: &Query,
    schema: &Schema,
    stats: &DatabaseStats,
) -> Result<QueryPlan> {
    plan_query_inner(q, schema, Some(stats))
}

fn plan_query_inner(
    q: &Query,
    schema: &Schema,
    stats: Option<&DatabaseStats>,
) -> Result<QueryPlan> {
    let select = plan_select(&q.select, schema, stats)?;
    let compound = match &q.compound {
        Some((op, rhs)) => Some((*op, Box::new(plan_query_inner(rhs, schema, stats)?))),
        None => None,
    };
    Ok(QueryPlan { select, compound })
}

/// Plan-time binding environment; the schema-only analogue of the
/// interpreter's row scope.
struct Binder<'a> {
    schema: &'a Schema,
    /// `(lowercased FROM name, schema table index, column offset)`.
    bound: Vec<(String, usize, usize)>,
    width: usize,
}

impl<'a> Binder<'a> {
    fn bind(schema: &'a Schema, select: &Select) -> Result<Binder<'a>> {
        let mut bound = Vec::new();
        let mut offset = 0;
        for t in &select.from {
            let ti = schema
                .table_index(&t.name)
                .ok_or_else(|| NliError::UnknownTable(t.name.clone()))?;
            bound.push((t.name.to_lowercase(), ti, offset));
            offset += schema.tables[ti].columns.len();
        }
        Ok(Binder {
            schema,
            bound,
            width: offset,
        })
    }

    /// Resolve a column name to an offset in the joined row; same rules as
    /// the interpreter (qualified names match the FROM spelling, unqualified
    /// names must be unambiguous across FROM entries).
    fn resolve(&self, c: &ColName) -> Result<usize> {
        match &c.table {
            Some(t) => {
                let (_, ti, off) = self
                    .bound
                    .iter()
                    .find(|(name, _, _)| name == &t.to_lowercase())
                    .ok_or_else(|| NliError::UnknownTable(t.clone()))?;
                let ci = self.schema.tables[*ti]
                    .column_index(&c.column)
                    .ok_or_else(|| NliError::UnknownColumn(format!("{t}.{}", c.column)))?;
                Ok(off + ci)
            }
            None => {
                let mut hit = None;
                for (_, ti, off) in &self.bound {
                    if let Some(ci) = self.schema.tables[*ti].column_index(&c.column) {
                        if hit.is_some() {
                            return Err(NliError::AmbiguousColumn(c.column.clone()));
                        }
                        hit = Some(off + ci);
                    }
                }
                hit.ok_or_else(|| NliError::UnknownColumn(c.column.clone()))
            }
        }
    }

    /// Data type of the column at a joined-row offset.
    fn dtype_at(&self, offset: usize) -> DataType {
        for (_, ti, off) in self.bound.iter().rev() {
            if offset >= *off {
                return self.schema.tables[*ti].columns[offset - off].dtype;
            }
        }
        unreachable!("offset outside bound range")
    }

    /// FROM-entry index whose column range contains `offset`.
    fn entry_of(&self, offset: usize) -> usize {
        for (i, (_, _, off)) in self.bound.iter().enumerate().rev() {
            if offset >= *off {
                return i;
            }
        }
        unreachable!("offset outside bound range")
    }

    /// All output column names for `SELECT *`, qualified when ambiguous.
    fn output_columns(&self) -> Vec<String> {
        let mut counts: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
        for (_, ti, _) in &self.bound {
            for c in &self.schema.tables[*ti].columns {
                *counts.entry(c.name.as_str()).or_insert(0) += 1;
            }
        }
        let mut out = Vec::with_capacity(self.width);
        for (name, ti, _) in &self.bound {
            for c in &self.schema.tables[*ti].columns {
                if counts[c.name.as_str()] > 1 {
                    out.push(format!("{name}.{}", c.name));
                } else {
                    out.push(c.name.clone());
                }
            }
        }
        out
    }

    /// Bind an AST expression: resolve columns, compile subqueries.
    fn bind_expr(&self, e: &Expr) -> Result<PlanExpr> {
        Ok(match e {
            Expr::Column(c) => PlanExpr::Col(self.resolve(c)?),
            Expr::Literal(v) => PlanExpr::Literal(v.clone()),
            Expr::Star => PlanExpr::Star,
            Expr::Agg {
                func,
                arg,
                distinct,
            } => PlanExpr::Agg {
                func: *func,
                arg: Box::new(self.bind_expr(arg)?),
                distinct: *distinct,
            },
            Expr::Binary { left, op, right } => PlanExpr::Binary {
                left: Box::new(self.bind_expr(left)?),
                op: *op,
                right: Box::new(self.bind_expr(right)?),
            },
            Expr::Not(inner) => PlanExpr::Not(Box::new(self.bind_expr(inner)?)),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => PlanExpr::Like {
                expr: Box::new(self.bind_expr(expr)?),
                pattern: pattern.clone(),
                negated: *negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => PlanExpr::Between {
                expr: Box::new(self.bind_expr(expr)?),
                low: Box::new(self.bind_expr(low)?),
                high: Box::new(self.bind_expr(high)?),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => PlanExpr::InList {
                expr: Box::new(self.bind_expr(expr)?),
                list: list.clone(),
                negated: *negated,
            },
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => PlanExpr::InPlan {
                expr: Box::new(self.bind_expr(expr)?),
                plan: Box::new(plan_query(query, self.schema)?),
                negated: *negated,
            },
            Expr::ScalarSubquery(q) => PlanExpr::ScalarPlan(Box::new(plan_query(q, self.schema)?)),
            Expr::IsNull { expr, negated } => PlanExpr::IsNull {
                expr: Box::new(self.bind_expr(expr)?),
                negated: *negated,
            },
        })
    }
}

/// Flatten a WHERE tree into its top-level AND conjuncts (in evaluation
/// order).
fn flatten_and<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    match e {
        Expr::Binary {
            left,
            op: BinOp::And,
            right,
        } => {
            flatten_and(left, out);
            flatten_and(right, out);
        }
        other => out.push(other),
    }
}

/// `col = col` shape, the candidate for hash-join extraction.
fn as_column_equality(e: &Expr) -> Option<(&ColName, &ColName)> {
    match e {
        Expr::Binary {
            left,
            op: BinOp::Eq,
            right,
        } => match (left.as_ref(), right.as_ref()) {
            (Expr::Column(a), Expr::Column(b)) => Some((a, b)),
            _ => None,
        },
        _ => None,
    }
}

/// Whether an equality on these column types can be keyed by
/// [`Value::canonical`] without changing semantics: same type always works,
/// and Int/Float mix works because integral floats canonicalize to the
/// integer spelling. Mixed text/number stays a residual filter (SQL `=`
/// calls those incomparable; a canonical hash key would not).
fn hash_compatible(a: DataType, b: DataType) -> bool {
    a == b || (a.is_numeric() && b.is_numeric())
}

fn plan_select(
    select: &Select,
    schema: &Schema,
    stats: Option<&DatabaseStats>,
) -> Result<SelectPlan> {
    let binder = Binder::bind(schema, select)?;
    let n = binder.bound.len();

    let mut conjuncts: Vec<&Expr> = Vec::new();
    if let Some(w) = &select.where_clause {
        flatten_and(w, &mut conjuncts);
    }
    let mut used = vec![false; conjuncts.len()];

    // -- Join-edge extraction -----------------------------------------------
    // For each FROM entry after the first, find an equi-join condition
    // connecting it to the FROM-order prefix: explicit ON conditions first
    // (mirroring the interpreter's probe order exactly), then top-level
    // WHERE conjuncts of the shape `prefix_col = new_col`. The edge set is
    // fixed here, identically for rule-based and cost-based plans — the
    // cost pass below only reorders when the edges *execute*.
    let mut edges: Vec<Option<(usize, usize)>> = Vec::with_capacity(n.saturating_sub(1));
    for i in 1..n {
        let new_off = binder.bound[i].2;
        let new_width = schema.tables[binder.bound[i].1].columns.len();
        let new_range = new_off..new_off + new_width;
        let prefix_width = new_off;

        let mut step = None;
        for j in &select.joins {
            let l = binder.resolve(&j.left)?;
            let r = binder.resolve(&j.right)?;
            let (inner, outer) = if new_range.contains(&l) {
                (l, r)
            } else if new_range.contains(&r) {
                (r, l)
            } else {
                continue;
            };
            if outer < prefix_width {
                step = Some((outer, inner - new_off));
                break;
            }
        }
        if step.is_none() {
            for (ci, c) in conjuncts.iter().enumerate() {
                if used[ci] {
                    continue;
                }
                let Some((a, b)) = as_column_equality(c) else {
                    continue;
                };
                let (l, r) = (binder.resolve(a)?, binder.resolve(b)?);
                let (inner, outer) = if new_range.contains(&l) && r < prefix_width {
                    (l, r)
                } else if new_range.contains(&r) && l < prefix_width {
                    (r, l)
                } else {
                    continue;
                };
                if hash_compatible(binder.dtype_at(inner), binder.dtype_at(outer)) {
                    step = Some((outer, inner - new_off));
                    used[ci] = true;
                    break;
                }
            }
        }
        edges.push(step);
    }

    // -- Predicate pushdown -------------------------------------------------
    // Bind the surviving conjuncts; a conjunct that references exactly one
    // FROM entry (and no subquery or aggregate) filters that entry's scan.
    let mut scan_filters: Vec<Vec<PlanExpr>> = vec![Vec::new(); n];
    let mut residual_parts: Vec<PlanExpr> = Vec::new();
    for (ci, c) in conjuncts.iter().enumerate() {
        if used[ci] {
            continue;
        }
        let bound = binder.bind_expr(c)?;
        let offsets = bound.col_offsets();
        let single_entry = match offsets.as_slice() {
            [] => None,
            [first, rest @ ..] => {
                let entry = binder.entry_of(*first);
                rest.iter()
                    .all(|o| binder.entry_of(*o) == entry)
                    .then_some(entry)
            }
        };
        match single_entry {
            Some(k) if !bound.has_subplan() && !bound.has_aggregate() => {
                let base = binder.bound[k].2;
                scan_filters[k].push(bound.map_cols(&|o| o - base));
            }
            _ => residual_parts.push(bound),
        }
    }
    let residual = residual_parts
        .into_iter()
        .reduce(|acc, next| PlanExpr::Binary {
            left: Box::new(acc),
            op: BinOp::And,
            right: Box::new(next),
        });

    let mut scans = binder
        .bound
        .iter()
        .map(|(_, ti, off)| {
            let width = schema.tables[*ti].columns.len();
            let filter = scan_filters[binder.entry_of(*off)]
                .clone()
                .into_iter()
                .reduce(|acc, next| PlanExpr::Binary {
                    left: Box::new(acc),
                    op: BinOp::And,
                    right: Box::new(next),
                });
            ScanNode {
                table: *ti,
                table_name: schema.tables[*ti].name.clone(),
                offset: *off,
                width,
                filter,
                est_rows: None,
            }
        })
        .collect::<Vec<_>>();

    // -- Join ordering ------------------------------------------------------
    // Rule-based: identity order, hash joins building over the new table.
    // Cost-based: greedy reorder of the same edges, by estimated
    // cardinality (see `cost_order`).
    let (exec_order, joins) = match stats {
        Some(st) => {
            cost_order(schema, &mut scans, &edges, st).unwrap_or_else(|| rule_order(&edges, n))
        }
        None => rule_order(&edges, n),
    };

    // -- Aggregation, projection, ordering ----------------------------------
    let aggregate = !select.group_by.is_empty()
        || select.items.iter().any(|i| i.expr.contains_aggregate())
        || select
            .having
            .as_ref()
            .is_some_and(|h| h.contains_aggregate());

    let group_by = select
        .group_by
        .iter()
        .map(|g| binder.bind_expr(g))
        .collect::<Result<Vec<_>>>()?;
    let having = select
        .having
        .as_ref()
        .map(|h| binder.bind_expr(h))
        .transpose()?;

    let star = !aggregate && select.items.len() == 1 && matches!(select.items[0].expr, Expr::Star);
    let mut columns = Vec::with_capacity(select.items.len());
    let mut items = Vec::with_capacity(select.items.len());
    if star {
        columns = binder.output_columns();
        items.push(PlanExpr::Star);
    } else {
        for item in &select.items {
            if !aggregate && matches!(item.expr, Expr::Star) {
                return Err(NliError::Execution(
                    "`*` must be the only select item".into(),
                ));
            }
            columns.push(
                item.alias
                    .clone()
                    .unwrap_or_else(|| item.expr.to_string().to_lowercase()),
            );
            items.push(binder.bind_expr(&item.expr)?);
        }
    }

    let order_by = select
        .order_by
        .iter()
        .map(|o| {
            Ok(SortKey {
                expr: binder.bind_expr(&o.expr)?,
                desc: o.desc,
            })
        })
        .collect::<Result<Vec<_>>>()?;

    Ok(SelectPlan {
        scans,
        exec_order,
        joins,
        residual,
        aggregate,
        group_by,
        having,
        star,
        items,
        columns,
        joined_columns: binder.output_columns(),
        order_by,
        distinct: select.distinct,
        limit: select.limit,
    })
}

/// Identity execution order with rule-based join steps: every edge becomes
/// a hash join building over the newly attached table, no estimates.
fn rule_order(edges: &[Option<(usize, usize)>], n: usize) -> (Vec<usize>, Vec<JoinStep>) {
    let joins = edges
        .iter()
        .map(|e| JoinStep {
            kind: match e {
                Some((probe_off, build_col)) => JoinKind::Hash {
                    probe_off: *probe_off,
                    build_col: *build_col,
                    build_side: BuildSide::New,
                },
                None => JoinKind::Cross,
            },
            est_rows: None,
        })
        .collect();
    ((0..n).collect(), joins)
}

/// Fallback selectivity for predicates the model has no shape for.
const DEFAULT_SEL: f64 = 1.0 / 3.0;

/// Greedy cost-based ordering of the rule-extracted join edges.
///
/// Each edge connects a FROM entry to one earlier entry, so the edges form
/// a forest. Starting from the entry with the smallest estimated scan
/// output, the pass repeatedly attaches the edge-connected entry whose join
/// is estimated cheapest — keeping the covered part of each tree connected,
/// which guarantees every edge is applied as a join exactly once (the
/// predicate set is untouched). Entries with no edge cross-attach only once
/// no edge can fire. Also fills `est_rows` on every scan.
///
/// Returns `None` (caller falls back to rule order) in the impossible case
/// that an edge was left unapplied — a cheap structural safety net, since a
/// dropped edge would drop a predicate.
fn cost_order(
    schema: &Schema,
    scans: &mut [ScanNode],
    edges: &[Option<(usize, usize)>],
    stats: &DatabaseStats,
) -> Option<(Vec<usize>, Vec<JoinStep>)> {
    let n = scans.len();
    let est: Vec<f64> = scans
        .iter()
        .map(|s| {
            let ts = &stats.tables[s.table];
            let sel = s.filter.as_ref().map_or(1.0, |f| selectivity(f, ts));
            ts.row_count as f64 * sel
        })
        .collect();
    for (s, e) in scans.iter_mut().zip(&est) {
        s.est_rows = Some(e.round() as u64);
    }
    if n <= 1 {
        return Some(((0..n).collect(), Vec::new()));
    }

    // Edge endpoints as (entry, table-local column) pairs; `b` is the FROM
    // entry the rule pass attached, `a` the prefix entry it keyed against.
    struct Edge {
        a: usize,
        a_col: usize,
        b: usize,
        b_col: usize,
    }
    let entry_of = |off: usize| {
        scans
            .iter()
            .position(|s| off >= s.offset && off < s.offset + s.width)
            .expect("edge offset inside some scan")
    };
    let edge_list: Vec<Edge> = edges
        .iter()
        .enumerate()
        .filter_map(|(k, e)| {
            e.map(|(probe_off, build_col)| {
                let a = entry_of(probe_off);
                Edge {
                    a,
                    a_col: probe_off - scans[a].offset,
                    b: k + 1,
                    b_col: build_col,
                }
            })
        })
        .collect();
    let ndv_of = |entry: usize, col: usize| stats.tables[scans[entry].table].columns[col].ndv;
    // Estimated join cardinality: |S| * |new| / max of the effective key
    // NDVs, where an NDV is capped by its own side's cardinality.
    let join_est = |est_s: f64, s_ndv: u64, est_new: f64, new_ndv: u64| {
        let eff_s = (s_ndv as f64).min(est_s).max(1.0);
        let eff_new = (new_ndv as f64).min(est_new).max(1.0);
        est_s * est_new / eff_s.max(eff_new)
    };

    let start = (0..n).min_by(|&x, &y| est[x].total_cmp(&est[y]))?;
    let mut in_s = vec![false; n];
    in_s[start] = true;
    let mut order = vec![start];
    let mut joins = Vec::with_capacity(n - 1);
    let mut est_s = est[start];
    let mut edge_used = vec![false; edge_list.len()];
    while order.len() < n {
        // Cheapest edge with exactly one endpoint inside the prefix.
        let mut best: Option<(f64, usize, usize)> = None; // (est, entry, edge index)
        for (ei, e) in edge_list.iter().enumerate() {
            if edge_used[ei] || in_s[e.a] == in_s[e.b] {
                continue;
            }
            let (s_col, j, j_col) = if in_s[e.a] {
                (e.a_col, e.b, e.b_col)
            } else {
                (e.b_col, e.a, e.a_col)
            };
            let s_entry = if in_s[e.a] { e.a } else { e.b };
            let ej = join_est(est_s, ndv_of(s_entry, s_col), est[j], ndv_of(j, j_col));
            if best.is_none_or(|(b, ..)| ej < b) {
                best = Some((ej, j, ei));
            }
        }
        match best {
            Some((ej, j, ei)) => {
                let e = &edge_list[ei];
                let (p_entry, p_col, new_col) = if in_s[e.a] {
                    (e.a, e.a_col, e.b_col)
                } else {
                    (e.b, e.b_col, e.a_col)
                };
                let probe_off = scans[p_entry].offset + p_col;
                let mergeable = joins.is_empty()
                    && merge_eligible(schema, stats, scans, p_entry, p_col, j, new_col);
                let kind = if mergeable {
                    JoinKind::Merge {
                        probe_off,
                        build_col: new_col,
                    }
                } else {
                    JoinKind::Hash {
                        probe_off,
                        build_col: new_col,
                        build_side: if est_s < est[j] {
                            BuildSide::Prefix
                        } else {
                            BuildSide::New
                        },
                    }
                };
                joins.push(JoinStep {
                    kind,
                    est_rows: Some(ej.round() as u64),
                });
                edge_used[ei] = true;
                in_s[j] = true;
                order.push(j);
                est_s = ej;
            }
            None => {
                // No edge can fire: every partially covered tree is fully
                // covered, so start the next one with the cheapest entry.
                let j = (0..n)
                    .filter(|&j| !in_s[j])
                    .min_by(|&x, &y| est[x].total_cmp(&est[y]))?;
                est_s *= est[j];
                joins.push(JoinStep {
                    kind: JoinKind::Cross,
                    est_rows: Some(est_s.round() as u64),
                });
                in_s[j] = true;
                order.push(j);
            }
        }
    }
    debug_assert!(edge_used.iter().all(|&u| u), "join edge left unapplied");
    if !edge_used.iter().all(|&u| u) {
        return None;
    }
    Some((order, joins))
}

/// Whether the first join may merge instead of hash: both key columns are
/// same-typed `Int` or `Date` (no cross-type canonical traps) and the
/// statistics say both are stored ascending and NULL-free. Only the first
/// join qualifies — its left input is a bare scan in storage order, so
/// sortedness of the base column carries through the (order-preserving)
/// scan filter.
fn merge_eligible(
    schema: &Schema,
    stats: &DatabaseStats,
    scans: &[ScanNode],
    p_entry: usize,
    p_col: usize,
    new_entry: usize,
    new_col: usize,
) -> bool {
    let dt = |entry: usize, col: usize| schema.tables[scans[entry].table].columns[col].dtype;
    let sorted =
        |entry: usize, col: usize| stats.tables[scans[entry].table].columns[col].sorted_asc;
    matches!(
        (dt(p_entry, p_col), dt(new_entry, new_col)),
        (DataType::Int, DataType::Int) | (DataType::Date, DataType::Date)
    ) && sorted(p_entry, p_col)
        && sorted(new_entry, new_col)
}

/// Estimated fraction of a table's rows satisfying a pushed-down scan
/// filter (expression over table-local column offsets). Crude by design:
/// the result only steers cost choices, never semantics.
fn selectivity(e: &PlanExpr, ts: &TableStats) -> f64 {
    let ndv = |c: usize| (ts.columns[c].ndv as f64).max(1.0);
    let col_of = |e: &PlanExpr| match e {
        PlanExpr::Col(c) => Some(*c),
        _ => None,
    };
    let s = match e {
        PlanExpr::Binary { left, op, right } => match op {
            BinOp::And => selectivity(left, ts) * selectivity(right, ts),
            BinOp::Or => selectivity(left, ts) + selectivity(right, ts),
            BinOp::Eq | BinOp::Neq => {
                let eq = match (col_of(left), col_of(right)) {
                    (Some(c), _) | (None, Some(c)) => 1.0 / ndv(c),
                    _ => DEFAULT_SEL,
                };
                if *op == BinOp::Eq {
                    eq
                } else {
                    1.0 - eq
                }
            }
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                range_selectivity(left, *op, right, ts)
            }
            _ => DEFAULT_SEL,
        },
        PlanExpr::Not(inner) => 1.0 - selectivity(inner, ts),
        PlanExpr::Like { negated, .. } | PlanExpr::Between { negated, .. } => {
            if *negated {
                0.75
            } else {
                0.25
            }
        }
        PlanExpr::InList {
            expr,
            list,
            negated,
        } => {
            let hit = match col_of(expr) {
                Some(c) => (list.len() as f64 / ndv(c)).min(1.0),
                None => DEFAULT_SEL,
            };
            if *negated {
                1.0 - hit
            } else {
                hit
            }
        }
        PlanExpr::IsNull { expr, negated } => {
            let frac = match col_of(expr) {
                Some(c) => ts.columns[c].null_fraction(ts.row_count),
                None => DEFAULT_SEL,
            };
            if *negated {
                1.0 - frac
            } else {
                frac
            }
        }
        _ => DEFAULT_SEL,
    };
    s.clamp(0.0, 1.0)
}

/// Range predicate selectivity by linear interpolation between the
/// column's min and max (numeric columns only; everything else gets the
/// default third).
fn range_selectivity(left: &PlanExpr, op: BinOp, right: &PlanExpr, ts: &TableStats) -> f64 {
    // Normalize to `col OP literal` by flipping the comparison if needed.
    let (col, lit, op) = match (left, right) {
        (PlanExpr::Col(c), PlanExpr::Literal(v)) => (*c, v, op),
        (PlanExpr::Literal(v), PlanExpr::Col(c)) => {
            let flipped = match op {
                BinOp::Lt => BinOp::Gt,
                BinOp::Le => BinOp::Ge,
                BinOp::Gt => BinOp::Lt,
                BinOp::Ge => BinOp::Le,
                other => other,
            };
            (*c, v, flipped)
        }
        _ => return DEFAULT_SEL,
    };
    let num = |v: &Value| match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    };
    let stats = &ts.columns[col];
    let (Some(lo), Some(hi), Some(v)) = (
        stats.min.as_ref().and_then(num),
        stats.max.as_ref().and_then(num),
        num(lit),
    ) else {
        return DEFAULT_SEL;
    };
    if hi <= lo {
        return DEFAULT_SEL;
    }
    let below = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
    match op {
        BinOp::Lt | BinOp::Le => below,
        BinOp::Gt | BinOp::Ge => 1.0 - below,
        _ => DEFAULT_SEL,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use nli_core::{Column, Schema, Table};

    fn schema() -> Schema {
        let mut s = Schema::new(
            "shop",
            vec![
                Table::new(
                    "products",
                    vec![
                        Column::new("id", DataType::Int).primary(),
                        Column::new("name", DataType::Text),
                        Column::new("category", DataType::Text),
                        Column::new("price", DataType::Float),
                    ],
                ),
                Table::new(
                    "sales",
                    vec![
                        Column::new("id", DataType::Int).primary(),
                        Column::new("product_id", DataType::Int),
                        Column::new("amount", DataType::Float),
                    ],
                ),
            ],
        );
        s.add_foreign_key("sales", "product_id", "products", "id")
            .unwrap();
        s
    }

    fn plan(sql: &str) -> QueryPlan {
        plan_query(&parse_query(sql).unwrap(), &schema()).unwrap()
    }

    /// The rule-based hash step: build over the new table, no estimate.
    fn hash_new(probe_off: usize, build_col: usize) -> JoinStep {
        JoinStep {
            kind: JoinKind::Hash {
                probe_off,
                build_col,
                build_side: BuildSide::New,
            },
            est_rows: None,
        }
    }

    #[test]
    fn explicit_join_becomes_hash_step() {
        let p =
            plan("SELECT products.name FROM sales JOIN products ON sales.product_id = products.id");
        // sales occupies offsets 0..3, products 3..7
        assert_eq!(p.select.joins, vec![hash_new(1, 0)]);
        assert_eq!(
            p.select.exec_order,
            vec![0, 1],
            "rule plans keep FROM order"
        );
        assert!(p.select.residual.is_none());
    }

    #[test]
    fn where_equijoin_is_extracted_into_hash_step() {
        let p =
            plan("SELECT products.name FROM sales, products WHERE sales.product_id = products.id");
        assert_eq!(p.select.joins, vec![hash_new(1, 0)]);
        assert!(
            p.select.residual.is_none(),
            "the extracted conjunct must leave the WHERE clause"
        );
    }

    #[test]
    fn single_table_predicates_push_into_the_scan() {
        let p = plan(
            "SELECT products.name FROM sales, products \
             WHERE sales.product_id = products.id AND products.price > 10 AND sales.amount < 5",
        );
        assert_eq!(p.select.joins.len(), 1);
        assert!(matches!(p.select.joins[0].kind, JoinKind::Hash { .. }));
        assert!(p.select.residual.is_none());
        // sales scan keeps `amount < 5` rebased to its own offsets
        let sales_filter = p.select.scans[0].filter.as_ref().unwrap();
        assert_eq!(sales_filter.col_offsets(), vec![2]);
        // products scan keeps `price > 10` rebased to its own offsets
        let products_filter = p.select.scans[1].filter.as_ref().unwrap();
        assert_eq!(products_filter.col_offsets(), vec![3]);
    }

    #[test]
    fn cross_entry_disjunction_stays_residual() {
        let p = plan(
            "SELECT products.name FROM sales JOIN products ON sales.product_id = products.id \
             WHERE products.price > 10 OR sales.amount < 5",
        );
        assert!(p.select.scans.iter().all(|s| s.filter.is_none()));
        assert!(p.select.residual.is_some());
    }

    #[test]
    fn text_number_equality_is_not_extracted() {
        // name = id is incomparable under SQL `=` (always filters all rows);
        // keying a hash join on canonical text would wrongly match "1" to 1.
        let p = plan("SELECT products.name FROM sales, products WHERE products.name = sales.id");
        assert_eq!(
            p.select.joins,
            vec![JoinStep {
                kind: JoinKind::Cross,
                est_rows: None
            }]
        );
        assert!(p.select.residual.is_some());
    }

    #[test]
    fn subquery_conjunct_is_never_pushed_down() {
        let p = plan(
            "SELECT name FROM products WHERE id IN (SELECT product_id FROM sales) \
             AND price > 1",
        );
        // `price > 1` pushes into the scan; the IN-subquery stays residual
        // for per-database materialization.
        assert!(p.select.scans[0].filter.is_some());
        let residual = p.select.residual.as_ref().unwrap();
        assert!(residual.has_subplan());
    }

    #[test]
    fn plan_is_schema_bound_and_errors_at_plan_time() {
        let q = parse_query("SELECT nope FROM products").unwrap();
        assert!(matches!(
            plan_query(&q, &schema()),
            Err(NliError::UnknownColumn(_))
        ));
        let q = parse_query("SELECT id FROM sales JOIN products ON sales.product_id = products.id")
            .unwrap();
        assert!(matches!(
            plan_query(&q, &schema()),
            Err(NliError::AmbiguousColumn(_))
        ));
    }

    #[test]
    fn columns_are_fixed_at_plan_time() {
        let p = plan("SELECT name, SUM(price) AS total FROM products GROUP BY name");
        assert_eq!(p.select.columns, vec!["name", "total"]);
        assert!(p.select.aggregate);
        let p = plan("SELECT * FROM sales JOIN products ON sales.product_id = products.id");
        // `id` appears in both tables → qualified; others stay bare
        assert_eq!(
            p.select.columns,
            vec![
                "sales.id",
                "product_id",
                "amount",
                "products.id",
                "name",
                "category",
                "price"
            ]
        );
    }

    #[test]
    fn set_op_arity_is_visible_on_the_plan() {
        let p = plan("SELECT id, name FROM products UNION SELECT id, amount FROM sales");
        assert_eq!(p.arity(), 2);
        let (op, rhs) = p.compound.as_ref().unwrap();
        assert_eq!(*op, SetOp::Union);
        assert_eq!(rhs.arity(), 2);
    }

    /// A populated database over the test schema: `products_rows` products
    /// with serial ids, `sales_rows` sales whose `product_id` cycles (so it
    /// is *not* stored sorted).
    fn stats_db(products_rows: i64, sales_rows: i64) -> nli_core::Database {
        let mut db = nli_core::Database::empty(schema());
        for i in 0..products_rows {
            db.insert(
                "products",
                vec![
                    Value::Int(i + 1),
                    Value::Text(format!("p{i}")),
                    Value::Text("cat".into()),
                    Value::Float(i as f64),
                ],
            )
            .unwrap();
        }
        for i in 0..sales_rows {
            db.insert(
                "sales",
                vec![
                    Value::Int(i + 1),
                    Value::Int(i % products_rows + 1),
                    Value::Float(i as f64),
                ],
            )
            .unwrap();
        }
        db
    }

    fn plan_with_stats(sql: &str, db: &nli_core::Database) -> QueryPlan {
        plan_query_with_stats(&parse_query(sql).unwrap(), &db.schema, &db.stats()).unwrap()
    }

    #[test]
    fn cost_pass_starts_from_the_smallest_input_and_builds_over_it() {
        let db = stats_db(5, 200);
        let p = plan_with_stats(
            "SELECT products.name FROM sales JOIN products ON sales.product_id = products.id",
            &db,
        );
        // 5 products vs 200 sales: execution starts from products (FROM
        // entry 1) even though sales is listed first...
        assert_eq!(p.select.exec_order, vec![1, 0]);
        // ...and the hash table builds over the 5-row prefix, keyed on
        // products.id (global offset 3), attaching sales by its local
        // product_id column. `sorted` stats can't allow a merge here:
        // sales.product_id cycles.
        assert_eq!(
            p.select.joins[0].kind,
            JoinKind::Hash {
                probe_off: 3,
                build_col: 1,
                build_side: BuildSide::Prefix
            }
        );
        // Estimates ride on the plan for EXPLAIN: 200 sales rows match ~5
        // distinct product ids.
        assert_eq!(p.select.scans[1].est_rows, Some(5));
        assert_eq!(p.select.joins[0].est_rows, Some(200));
    }

    #[test]
    fn merge_join_is_planned_when_both_keys_are_stored_sorted() {
        let db = stats_db(5, 200);
        let p = plan_with_stats(
            "SELECT products.name FROM products JOIN sales ON products.id = sales.id",
            &db,
        );
        // Both `id` columns are serial (ascending, NULL-free) Ints, so the
        // first join may merge instead of hashing.
        assert!(
            matches!(p.select.joins[0].kind, JoinKind::Merge { .. }),
            "{:?}",
            p.select.joins[0]
        );
    }

    #[test]
    fn cost_pass_keeps_the_rule_based_predicate_placement() {
        // The cost pass must only reorder execution: scans, pushdown, and
        // residual stay byte-identical to the rule-based plan.
        let db = stats_db(5, 200);
        let sql = "SELECT products.name FROM sales, products \
             WHERE sales.product_id = products.id AND products.price > 2 AND sales.amount < 50";
        let rule = plan(sql);
        let cost = plan_with_stats(sql, &db);
        let strip = |mut s: SelectPlan| {
            for sc in &mut s.scans {
                sc.est_rows = None;
            }
            (s.scans, s.residual, s.group_by, s.items, s.columns)
        };
        assert_eq!(strip(rule.select), strip(cost.select));
    }

    #[test]
    fn range_selectivity_interpolates_between_min_and_max() {
        let db = stats_db(100, 1);
        // price spans 0..99; `price > 74` keeps ~a quarter of the rows.
        let p = plan_with_stats("SELECT name FROM products WHERE price > 74", &db);
        let est = p.select.scans[0].est_rows.unwrap();
        assert!((20..=30).contains(&est), "est {est} for a 25% range filter");
        // Equality keeps ~1/ndv of the rows.
        let p = plan_with_stats("SELECT name FROM products WHERE id = 7", &db);
        assert_eq!(p.select.scans[0].est_rows, Some(1));
    }
}
