//! Recursive-descent SQL parser for the benchmark dialect.
//!
//! The parser accepts both explicit `JOIN ... ON` chains and the implicit
//! comma-FROM spelling; both normalize to the same AST, which is one of the
//! alias-equivalence headaches string-match evaluation inherits (Table 3).

use crate::ast::{
    AggFunc, BinOp, ColName, Expr, JoinCond, OrderItem, Query, Select, SelectItem, SetOp, TableRef,
};
use crate::token::{lex, SqlToken, Sym};
use nli_core::{Date, NliError, Result, Value};

/// Parse a SQL string into a [`Query`]. The entire input must be consumed
/// (a trailing `;` is allowed).
pub fn parse_query(sql: &str) -> Result<Query> {
    let toks = lex(sql)?;
    let mut p = Parser { toks, pos: 0 };
    let q = p.query()?;
    p.eat_symbol(Sym::Semicolon); // optional trailing semicolon
    if !p.at_end() {
        return Err(NliError::Syntax(format!(
            "trailing tokens after query (at token {})",
            p.pos
        )));
    }
    Ok(q)
}

struct Parser {
    toks: Vec<SqlToken>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&SqlToken> {
        self.toks.get(self.pos)
    }

    fn peek2(&self) -> Option<&SqlToken> {
        self.toks.get(self.pos + 1)
    }

    fn next(&mut self) -> Option<SqlToken> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consume an identifier equal to `kw` (case-insensitive); false if not
    /// present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(SqlToken::Ident(w)) = self.peek() {
            if w == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(SqlToken::Ident(w)) if w == kw)
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(NliError::Syntax(format!(
                "expected {kw} at token {} ({:?})",
                self.pos,
                self.peek()
            )))
        }
    }

    fn eat_symbol(&mut self, s: Sym) -> bool {
        if let Some(SqlToken::Symbol(x)) = self.peek() {
            if *x == s {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_symbol(&mut self, s: Sym) -> Result<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(NliError::Syntax(format!(
                "expected {s:?} at token {} ({:?})",
                self.pos,
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(SqlToken::Ident(w)) => Ok(w),
            other => Err(NliError::Syntax(format!(
                "expected identifier, got {other:?}"
            ))),
        }
    }

    fn query(&mut self) -> Result<Query> {
        let select = self.select()?;
        let compound = if self.eat_kw("union") {
            // `UNION ALL` is treated as UNION (bag semantics collapse in the
            // benchmark subset).
            self.eat_kw("all");
            Some((SetOp::Union, Box::new(self.query()?)))
        } else if self.eat_kw("intersect") {
            Some((SetOp::Intersect, Box::new(self.query()?)))
        } else if self.eat_kw("except") {
            Some((SetOp::Except, Box::new(self.query()?)))
        } else {
            None
        };
        Ok(Query { select, compound })
    }

    fn select(&mut self) -> Result<Select> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut items = vec![self.select_item()?];
        while self.eat_symbol(Sym::Comma) {
            items.push(self.select_item()?);
        }
        self.expect_kw("from")?;
        let (from, joins) = self.parse_from_clause()?;
        let where_clause = if self.eat_kw("where") {
            Some(self.expr(0)?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        let mut having = None;
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            group_by.push(self.expr(3)?);
            while self.eat_symbol(Sym::Comma) {
                group_by.push(self.expr(3)?);
            }
            if self.eat_kw("having") {
                having = Some(self.expr(0)?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr(3)?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.next() {
                Some(SqlToken::Number(n)) if n >= 0.0 && n.fract() == 0.0 => Some(n as u64),
                other => return Err(NliError::Syntax(format!("bad LIMIT operand: {other:?}"))),
            }
        } else {
            None
        };
        Ok(Select {
            distinct,
            items,
            from,
            joins,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat_symbol(Sym::Star) {
            return Ok(SelectItem::plain(Expr::Star));
        }
        let expr = self.expr(3)?; // no AND/OR in projections
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }

    fn parse_from_clause(&mut self) -> Result<(Vec<TableRef>, Vec<JoinCond>)> {
        let mut from = vec![TableRef {
            name: self.ident()?,
        }];
        let mut joins = Vec::new();
        loop {
            if self.eat_kw("join") || self.eat_kw("inner") {
                self.eat_kw("join"); // after INNER
                from.push(TableRef {
                    name: self.ident()?,
                });
                if self.eat_kw("on") {
                    let left = self.col_name()?;
                    self.expect_symbol(Sym::Eq)?;
                    let right = self.col_name()?;
                    joins.push(JoinCond { left, right });
                }
            } else if self.eat_symbol(Sym::Comma) {
                from.push(TableRef {
                    name: self.ident()?,
                });
            } else {
                break;
            }
        }
        Ok((from, joins))
    }

    fn col_name(&mut self) -> Result<ColName> {
        let first = self.ident()?;
        if self.eat_symbol(Sym::Dot) {
            let col = self.ident()?;
            Ok(ColName {
                table: Some(first),
                column: col,
            })
        } else {
            Ok(ColName {
                table: None,
                column: first,
            })
        }
    }

    /// Precedence-climbing expression parser. `min_prec` 0 admits AND/OR;
    /// 3 admits comparisons and arithmetic only.
    fn expr(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            // postfix predicates bind at comparison level
            if min_prec <= 3 {
                if let Some(postfix) = self.try_postfix(&mut lhs)? {
                    lhs = postfix;
                    continue;
                }
            }
            let (op, prec) = match self.peek() {
                Some(SqlToken::Symbol(Sym::Plus)) => (BinOp::Add, 4),
                Some(SqlToken::Symbol(Sym::Minus)) => (BinOp::Sub, 4),
                Some(SqlToken::Symbol(Sym::Star)) => (BinOp::Mul, 5),
                Some(SqlToken::Symbol(Sym::Slash)) => (BinOp::Div, 5),
                Some(SqlToken::Symbol(Sym::Eq)) => (BinOp::Eq, 3),
                Some(SqlToken::Symbol(Sym::Neq)) => (BinOp::Neq, 3),
                Some(SqlToken::Symbol(Sym::Lt)) => (BinOp::Lt, 3),
                Some(SqlToken::Symbol(Sym::Le)) => (BinOp::Le, 3),
                Some(SqlToken::Symbol(Sym::Gt)) => (BinOp::Gt, 3),
                Some(SqlToken::Symbol(Sym::Ge)) => (BinOp::Ge, 3),
                Some(SqlToken::Ident(w)) if w == "and" => (BinOp::And, 2),
                Some(SqlToken::Ident(w)) if w == "or" => (BinOp::Or, 1),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.pos += 1;
            let rhs = self.expr(prec + 1)?;
            lhs = Expr::binary(lhs, op, rhs);
        }
        Ok(lhs)
    }

    /// LIKE / BETWEEN / IN / IS NULL postfix forms (with optional NOT).
    fn try_postfix(&mut self, lhs: &mut Expr) -> Result<Option<Expr>> {
        let negated = if self.peek_kw("not")
            && matches!(self.peek2(), Some(SqlToken::Ident(w)) if w == "like" || w == "between" || w == "in")
        {
            self.pos += 1;
            true
        } else {
            false
        };
        if self.eat_kw("like") {
            let pattern = match self.next() {
                Some(SqlToken::Str(s)) => s,
                other => {
                    return Err(NliError::Syntax(format!(
                        "LIKE expects string, got {other:?}"
                    )))
                }
            };
            return Ok(Some(Expr::Like {
                expr: Box::new(lhs.clone()),
                pattern,
                negated,
            }));
        }
        if self.eat_kw("between") {
            let low = self.expr(4)?;
            self.expect_kw("and")?;
            let high = self.expr(4)?;
            return Ok(Some(Expr::Between {
                expr: Box::new(lhs.clone()),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            }));
        }
        if self.eat_kw("in") {
            self.expect_symbol(Sym::LParen)?;
            if self.peek_kw("select") {
                let q = self.query()?;
                self.expect_symbol(Sym::RParen)?;
                return Ok(Some(Expr::InSubquery {
                    expr: Box::new(lhs.clone()),
                    query: Box::new(q),
                    negated,
                }));
            }
            let mut list = vec![self.literal()?];
            while self.eat_symbol(Sym::Comma) {
                list.push(self.literal()?);
            }
            self.expect_symbol(Sym::RParen)?;
            return Ok(Some(Expr::InList {
                expr: Box::new(lhs.clone()),
                list,
                negated,
            }));
        }
        if negated {
            return Err(NliError::Syntax("dangling NOT".into()));
        }
        if self.peek_kw("is") {
            self.pos += 1;
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Some(Expr::IsNull {
                expr: Box::new(lhs.clone()),
                negated,
            }));
        }
        Ok(None)
    }

    fn literal(&mut self) -> Result<Value> {
        match self.next() {
            Some(SqlToken::Number(n)) => Ok(number_value(n)),
            Some(SqlToken::Str(s)) => Ok(string_value(&s)),
            Some(SqlToken::Ident(w)) if w == "true" => Ok(Value::Bool(true)),
            Some(SqlToken::Ident(w)) if w == "false" => Ok(Value::Bool(false)),
            Some(SqlToken::Ident(w)) if w == "null" => Ok(Value::Null),
            Some(SqlToken::Symbol(Sym::Minus)) => match self.next() {
                Some(SqlToken::Number(n)) => Ok(number_value(-n)),
                other => Err(NliError::Syntax(format!(
                    "expected number after '-', got {other:?}"
                ))),
            },
            other => Err(NliError::Syntax(format!("expected literal, got {other:?}"))),
        }
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            let inner = self.expr(3)?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        if self.eat_symbol(Sym::Minus) {
            return match self.next() {
                Some(SqlToken::Number(n)) => Ok(Expr::Literal(number_value(-n))),
                other => Err(NliError::Syntax(format!(
                    "expected number after '-', got {other:?}"
                ))),
            };
        }
        match self.peek().cloned() {
            Some(SqlToken::Number(n)) => {
                self.pos += 1;
                Ok(Expr::Literal(number_value(n)))
            }
            Some(SqlToken::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(string_value(&s)))
            }
            Some(SqlToken::Symbol(Sym::Star)) => {
                // bare `*` only appears inside COUNT(*) / SELECT *; callers
                // guard this, but accept it to keep aggregate parsing simple.
                self.pos += 1;
                Ok(Expr::Star)
            }
            Some(SqlToken::Symbol(Sym::LParen)) => {
                self.pos += 1;
                if self.peek_kw("select") {
                    let q = self.query()?;
                    self.expect_symbol(Sym::RParen)?;
                    Ok(Expr::ScalarSubquery(Box::new(q)))
                } else {
                    let e = self.expr(0)?;
                    self.expect_symbol(Sym::RParen)?;
                    Ok(e)
                }
            }
            Some(SqlToken::Ident(w)) => {
                // TRUE/FALSE/NULL literals
                if w == "true" {
                    self.pos += 1;
                    return Ok(Expr::Literal(Value::Bool(true)));
                }
                if w == "false" {
                    self.pos += 1;
                    return Ok(Expr::Literal(Value::Bool(false)));
                }
                if w == "null" {
                    self.pos += 1;
                    return Ok(Expr::Literal(Value::Null));
                }
                // aggregate call?
                let agg = match w.as_str() {
                    "count" => Some(AggFunc::Count),
                    "sum" => Some(AggFunc::Sum),
                    "avg" => Some(AggFunc::Avg),
                    "min" => Some(AggFunc::Min),
                    "max" => Some(AggFunc::Max),
                    _ => None,
                };
                if let Some(func) = agg {
                    if matches!(self.peek2(), Some(SqlToken::Symbol(Sym::LParen))) {
                        self.pos += 2; // name + (
                        let distinct = self.eat_kw("distinct");
                        let arg = if self.eat_symbol(Sym::Star) {
                            Expr::Star
                        } else {
                            self.expr(3)?
                        };
                        self.expect_symbol(Sym::RParen)?;
                        return Ok(Expr::Agg {
                            func,
                            arg: Box::new(arg),
                            distinct,
                        });
                    }
                }
                self.pos += 1;
                if self.eat_symbol(Sym::Dot) {
                    let col = self.ident()?;
                    Ok(Expr::Column(ColName {
                        table: Some(w),
                        column: col,
                    }))
                } else {
                    Ok(Expr::Column(ColName {
                        table: None,
                        column: w,
                    }))
                }
            }
            other => Err(NliError::Syntax(format!("unexpected token: {other:?}"))),
        }
    }
}

/// Integral floats become `Int`, others `Float`.
fn number_value(n: f64) -> Value {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        Value::Int(n as i64)
    } else {
        Value::Float(n)
    }
}

/// Dates written as string literals become `Date` values (so comparisons
/// against date columns work); everything else stays text.
fn string_value(s: &str) -> Value {
    match Date::parse(s) {
        Some(d) => Value::Date(d),
        None => Value::Text(s.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(sql: &str) -> String {
        parse_query(sql).unwrap().to_string()
    }

    #[test]
    fn simple_select() {
        assert_eq!(
            roundtrip("select name from singer where age > 30"),
            "SELECT name FROM singer WHERE age > 30"
        );
    }

    #[test]
    fn canonical_output_reparses_to_same_ast() {
        let sqls = [
            "SELECT COUNT(*) FROM concert WHERE year >= 2014",
            "SELECT name, AVG(age) FROM singer GROUP BY country HAVING COUNT(*) > 2",
            "SELECT t.a FROM t JOIN u ON t.id = u.t_id ORDER BY t.a DESC LIMIT 5",
            "SELECT a FROM t WHERE b IN (1, 2, 3) AND c NOT LIKE '%x%'",
            "SELECT a FROM t WHERE b IN (SELECT b FROM u WHERE z = 'q')",
            "SELECT a FROM t WHERE x BETWEEN 1 AND 10 OR y IS NOT NULL",
            "SELECT a FROM t UNION SELECT a FROM u",
            "SELECT a FROM t WHERE p = (SELECT MAX(p) FROM t)",
        ];
        for sql in sqls {
            let q1 = parse_query(sql).unwrap();
            let printed = q1.to_string();
            let q2 = parse_query(&printed).unwrap();
            assert_eq!(q1, q2, "not stable for {sql}");
            assert_eq!(printed, q2.to_string());
        }
    }

    #[test]
    fn comma_from_is_accepted() {
        let q = parse_query("SELECT a FROM t, u WHERE t.id = u.t_id").unwrap();
        assert_eq!(q.select.from.len(), 2);
        assert!(q.select.joins.is_empty());
        assert!(q.select.where_clause.is_some());
    }

    #[test]
    fn inner_join_keyword() {
        let q = parse_query("SELECT a FROM t INNER JOIN u ON t.id = u.t_id").unwrap();
        assert_eq!(q.select.joins.len(), 1);
    }

    #[test]
    fn count_distinct() {
        let q = parse_query("SELECT COUNT(DISTINCT city) FROM store").unwrap();
        assert_eq!(q.to_string(), "SELECT COUNT(DISTINCT city) FROM store");
    }

    #[test]
    fn negative_literals() {
        let q = parse_query("SELECT a FROM t WHERE x < -5").unwrap();
        assert!(q.to_string().contains("< -5"));
    }

    #[test]
    fn date_literals_are_typed() {
        let q = parse_query("SELECT a FROM t WHERE d >= '2024-01-01'").unwrap();
        match &q.select.where_clause {
            Some(Expr::Binary { right, .. }) => {
                assert!(matches!(**right, Expr::Literal(Value::Date(_))));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn select_star() {
        assert_eq!(roundtrip("select * from t"), "SELECT * FROM t");
    }

    #[test]
    fn and_or_precedence() {
        let q = parse_query("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3").unwrap();
        // AND binds tighter: x=1 OR (y=2 AND z=3)
        assert_eq!(
            q.to_string(),
            "SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3"
        );
        match q.select.where_clause.unwrap() {
            Expr::Binary { op: BinOp::Or, .. } => {}
            other => panic!("expected OR at top, got {other:?}"),
        }
    }

    #[test]
    fn union_all_collapses_to_union() {
        let q = parse_query("SELECT a FROM t UNION ALL SELECT a FROM u").unwrap();
        assert!(matches!(q.compound, Some((SetOp::Union, _))));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_query("SELECT a FROM t extra").is_err());
        assert!(parse_query("SELECT a FROM t;").is_ok());
    }

    #[test]
    fn syntax_errors_are_reported() {
        for bad in [
            "",
            "SELECT",
            "SELECT FROM t",
            "SELECT a WHERE x = 1",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t LIMIT x",
            "SELECT a FROM t WHERE x LIKE 5",
        ] {
            assert!(parse_query(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn aliases_parse() {
        let q = parse_query("SELECT SUM(amount) AS total FROM sales").unwrap();
        assert_eq!(q.select.items[0].alias.as_deref(), Some("total"));
        assert_eq!(q.to_string(), "SELECT SUM(amount) AS total FROM sales");
    }
}
