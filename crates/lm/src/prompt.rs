//! Prompt construction and demonstration selection.
//!
//! Reproduces the prompt-engineering axis of the survey's LLM stage: a
//! [`Prompt`] serializes the database schema and (for few-shot strategies)
//! a set of demonstrations chosen by a [`DemoSelection`] policy — the
//! random / similarity / diversity trade-off studied by Nan et al. (2023).
//! Prompts meter their own token counts so harnesses can report cost.

use nli_core::{Database, Prng};
use nli_nlu::Embedding;
use serde::{Deserialize, Serialize};

/// How the LLM is prompted. Determines both the prompt text and the noise
/// scaling the simulated model applies (see [`crate::llm`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PromptStrategy {
    /// Schema + question only (Rajkumar et al., C3-style).
    ZeroShot,
    /// `k` demonstrations selected by `selection` (DIN-SQL-adjacent ICL).
    FewShot { k: usize, selection: DemoSelection },
    /// Few-shot plus explicit step decomposition (schema linking →
    /// classification → generation → self-correction), DIN-SQL-style.
    Decomposed { k: usize, selection: DemoSelection },
    /// Sample `n` candidates and majority-vote on execution results
    /// (SQL-PaLM-style self-consistency).
    SelfConsistency { n: usize },
}

impl PromptStrategy {
    pub fn name(&self) -> &'static str {
        match self {
            PromptStrategy::ZeroShot => "zero-shot",
            PromptStrategy::FewShot { .. } => "few-shot",
            PromptStrategy::Decomposed { .. } => "decomposed",
            PromptStrategy::SelfConsistency { .. } => "self-consistency",
        }
    }
}

/// Demonstration selection policy for in-context learning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DemoSelection {
    /// Uniform over the pool.
    Random,
    /// Nearest neighbours of the question by embedding cosine.
    Similarity,
    /// Alternate similar and dissimilar picks — the diversity/similarity
    /// balance Nan et al. found superior.
    Diversity,
}

/// A (question, program) demonstration pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Demonstration {
    pub question: String,
    pub program: String,
}

/// A fully rendered prompt.
#[derive(Debug, Clone, PartialEq)]
pub struct Prompt {
    pub system: String,
    pub schema: String,
    pub demonstrations: Vec<Demonstration>,
    pub question: String,
    /// Optional BIRD-style external knowledge.
    pub evidence: Option<String>,
}

impl Prompt {
    /// Build a prompt for `question` over `db`, selecting demonstrations
    /// from `pool` per `selection`.
    pub fn build(
        question: &str,
        evidence: Option<&str>,
        db: &Database,
        pool: &[Demonstration],
        k: usize,
        selection: DemoSelection,
        rng: &mut Prng,
    ) -> Prompt {
        Prompt {
            system: "Translate the question into SQL over the given schema.".to_string(),
            schema: db.schema.describe(),
            demonstrations: select_demos(question, pool, k, selection, rng),
            question: question.to_string(),
            evidence: evidence.map(str::to_string),
        }
    }

    /// Render the full prompt text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.system);
        out.push_str("\n\nSchema:\n");
        out.push_str(&self.schema);
        for d in &self.demonstrations {
            out.push_str(&format!("\nQ: {}\nSQL: {}\n", d.question, d.program));
        }
        if let Some(e) = &self.evidence {
            out.push_str(&format!("\nEvidence: {e}\n"));
        }
        out.push_str(&format!("\nQ: {}\nSQL:", self.question));
        out
    }

    /// Approximate token count (whitespace tokens; adequate for relative
    /// cost reporting).
    pub fn token_count(&self) -> usize {
        self.render().split_whitespace().count()
    }
}

/// Select `k` demonstrations from the pool.
pub fn select_demos(
    question: &str,
    pool: &[Demonstration],
    k: usize,
    selection: DemoSelection,
    rng: &mut Prng,
) -> Vec<Demonstration> {
    if pool.is_empty() || k == 0 {
        return Vec::new();
    }
    let k = k.min(pool.len());
    match selection {
        DemoSelection::Random => rng
            .sample_indices(pool.len(), k)
            .into_iter()
            .map(|i| pool[i].clone())
            .collect(),
        DemoSelection::Similarity => {
            let q = Embedding::of(question);
            let mut scored: Vec<(f64, usize)> = pool
                .iter()
                .enumerate()
                .map(|(i, d)| (q.cosine(&Embedding::of(&d.question)), i))
                .collect();
            scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
            scored[..k].iter().map(|&(_, i)| pool[i].clone()).collect()
        }
        DemoSelection::Diversity => {
            // Greedy max-marginal-relevance: first by similarity to the
            // question, then alternating away from what's already chosen.
            let q = Embedding::of(question);
            let embs: Vec<Embedding> = pool.iter().map(|d| Embedding::of(&d.question)).collect();
            let mut chosen: Vec<usize> = Vec::new();
            while chosen.len() < k {
                let mut best: Option<(f64, usize)> = None;
                for (i, e) in embs.iter().enumerate() {
                    if chosen.contains(&i) {
                        continue;
                    }
                    let sim_q = q.cosine(e);
                    let max_sim_chosen = chosen
                        .iter()
                        .map(|&j| e.cosine(&embs[j]))
                        .fold(0.0f64, f64::max);
                    let score = 0.6 * sim_q - 0.4 * max_sim_chosen;
                    if best.is_none() || score > best.unwrap().0 {
                        best = Some((score, i));
                    }
                }
                chosen.push(best.unwrap().1);
            }
            chosen.into_iter().map(|i| pool[i].clone()).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nli_core::{Column, DataType, Database, Schema, Table};

    fn pool() -> Vec<Demonstration> {
        vec![
            Demonstration {
                question: "how many singers are there".into(),
                program: "SELECT COUNT(*) FROM singer".into(),
            },
            Demonstration {
                question: "count the number of singers".into(),
                program: "SELECT COUNT(*) FROM singer".into(),
            },
            Demonstration {
                question: "average price of products".into(),
                program: "SELECT AVG(price) FROM products".into(),
            },
            Demonstration {
                question: "list all airport names".into(),
                program: "SELECT name FROM airport".into(),
            },
        ]
    }

    fn db() -> Database {
        Database::empty(Schema::new(
            "d",
            vec![Table::new(
                "singer",
                vec![Column::new("name", DataType::Text)],
            )],
        ))
    }

    #[test]
    fn similarity_selection_prefers_near_neighbours() {
        let mut rng = Prng::new(1);
        let demos = select_demos(
            "how many singers perform",
            &pool(),
            2,
            DemoSelection::Similarity,
            &mut rng,
        );
        assert!(demos.iter().all(|d| d.question.contains("singers")));
    }

    #[test]
    fn diversity_selection_spreads_out() {
        let mut rng = Prng::new(1);
        let demos = select_demos(
            "how many singers perform",
            &pool(),
            3,
            DemoSelection::Diversity,
            &mut rng,
        );
        // With two near-duplicates in the pool, diversity should not take
        // both before anything else.
        let dup_count = demos
            .iter()
            .filter(|d| d.question.contains("singers"))
            .count();
        assert!(dup_count <= 2);
        assert_eq!(demos.len(), 3);
    }

    #[test]
    fn random_selection_is_deterministic_per_seed() {
        let a = select_demos("q", &pool(), 2, DemoSelection::Random, &mut Prng::new(7));
        let b = select_demos("q", &pool(), 2, DemoSelection::Random, &mut Prng::new(7));
        assert_eq!(a, b);
    }

    #[test]
    fn k_is_clamped_to_pool_size() {
        let demos = select_demos(
            "q",
            &pool(),
            99,
            DemoSelection::Similarity,
            &mut Prng::new(1),
        );
        assert_eq!(demos.len(), 4);
        assert!(select_demos("q", &[], 3, DemoSelection::Random, &mut Prng::new(1)).is_empty());
    }

    #[test]
    fn prompt_renders_schema_demos_question() {
        let mut rng = Prng::new(1);
        let p = Prompt::build(
            "how many singers",
            Some("singers live in the singer table"),
            &db(),
            &pool(),
            1,
            DemoSelection::Similarity,
            &mut rng,
        );
        let text = p.render();
        assert!(text.contains("singer(name text)"));
        assert!(text.contains("Q: how many singers"));
        assert!(text.contains("Evidence:"));
        assert!(p.token_count() > 10);
    }

    #[test]
    fn strategy_names() {
        assert_eq!(PromptStrategy::ZeroShot.name(), "zero-shot");
        assert_eq!(
            PromptStrategy::FewShot {
                k: 4,
                selection: DemoSelection::Random
            }
            .name(),
            "few-shot"
        );
    }
}
