//! The PLM analogue: genuinely *trainable* statistical models.
//!
//! Two components stand in for fine-tuned pretrained language models:
//!
//! * [`AlignmentModel`] — token↔schema co-occurrence statistics learned
//!   from (question, SQL) pairs, the workhorse of learned schema linking
//!   (what BERT-style encoders contribute in RAT-SQL/SQLova-class models).
//! * [`SketchClassifier`] — a naive-Bayes classifier from question bags of
//!   stems to SQL sketches (which aggregate, how many conditions, group/
//!   order present), the skeleton-decoder signal of SQLNet/HydraNet-class
//!   models.
//!
//! Both exhibit the PLM-stage behavioural signature the survey describes:
//! near-ceiling accuracy with in-domain supervision, sharp degradation on
//! unseen domains and synonym-perturbed questions — because they truly
//! learn from the data they are given and nothing else.

use nli_core::Prng;
use nli_nlu::{is_stopword, stem, tokenize_words};
use nli_sql::{Expr, Query};
use std::collections::HashMap;

/// One supervised example.
#[derive(Debug, Clone)]
pub struct TrainingExample {
    pub question: String,
    pub sql: Query,
}

/// Token↔schema alignment statistics.
#[derive(Debug, Clone, Default)]
pub struct AlignmentModel {
    /// count(stem, column name)
    col_counts: HashMap<(String, String), f64>,
    /// count(stem, table name)
    table_counts: HashMap<(String, String), f64>,
    /// count(stem)
    token_counts: HashMap<String, f64>,
    examples: usize,
}

impl AlignmentModel {
    pub fn new() -> Self {
        AlignmentModel::default()
    }

    /// Content stems of a question.
    fn stems(question: &str) -> Vec<String> {
        tokenize_words(question)
            .iter()
            .filter(|w| !is_stopword(w))
            .map(|w| stem(w))
            .collect()
    }

    /// Accumulate statistics from one example.
    ///
    /// Credit assignment uses competitive linking (IBM-Model-1 style): a
    /// stem that lexically matches a column claims it exclusively, and the
    /// remaining stems share credit over the remaining columns. This is the
    /// alignment structure attention layers learn, and it is what lets the
    /// model attribute "takings" to `amount` when "category" has already
    /// claimed the `category` column.
    pub fn observe(&mut self, ex: &TrainingExample) {
        let stems = Self::stems(&ex.question);
        let mut cols: Vec<String> = Vec::new();
        walk_exprs(&ex.sql, &mut |e| {
            if let Expr::Column(c) = e {
                cols.push(c.column.clone());
            }
        });
        cols.sort();
        cols.dedup();
        let tables = ex.sql.tables();

        // competitive linking: lexical claims first
        let mut claimed_col = vec![false; cols.len()];
        let mut stem_claim: Vec<Option<usize>> = vec![None; stems.len()];
        for (ci, c) in cols.iter().enumerate() {
            let display = c.replace('_', " ");
            let mut best: Option<(f64, usize)> = None;
            for (si, s) in stems.iter().enumerate() {
                if stem_claim[si].is_some() {
                    continue;
                }
                let sim = nli_nlu::lexical_similarity(s, &nli_nlu::stem(&display));
                if sim >= 0.65 && best.is_none_or(|(b, _)| sim > b) {
                    best = Some((sim, si));
                }
            }
            if let Some((_, si)) = best {
                claimed_col[ci] = true;
                stem_claim[si] = Some(ci);
            }
        }
        let unclaimed: Vec<usize> = (0..cols.len()).filter(|&i| !claimed_col[i]).collect();

        for (si, s) in stems.iter().enumerate() {
            *self.token_counts.entry(s.clone()).or_insert(0.0) += 1.0;
            match stem_claim[si] {
                Some(ci) => {
                    *self
                        .col_counts
                        .entry((s.clone(), cols[ci].clone()))
                        .or_insert(0.0) += 1.0;
                }
                None => {
                    if !unclaimed.is_empty() {
                        let w = 1.0 / unclaimed.len() as f64;
                        for &ci in &unclaimed {
                            *self
                                .col_counts
                                .entry((s.clone(), cols[ci].clone()))
                                .or_insert(0.0) += w;
                        }
                    }
                }
            }
            for t in &tables {
                *self
                    .table_counts
                    .entry((s.clone(), t.clone()))
                    .or_insert(0.0) += 1.0;
            }
        }
        self.examples += 1;
    }

    /// Train on a batch.
    pub fn train(&mut self, examples: &[TrainingExample]) {
        for ex in examples {
            self.observe(ex);
        }
    }

    /// `P(column | stem)` from the learned statistics; 0 for unseen stems.
    pub fn column_score(&self, word: &str, column: &str) -> f64 {
        let s = stem(&word.to_lowercase());
        let tc = match self.token_counts.get(&s) {
            Some(c) => *c,
            None => return 0.0,
        };
        self.col_counts
            .get(&(s, column.to_lowercase()))
            .map(|c| c / tc)
            .unwrap_or(0.0)
    }

    /// `P(table | stem)`; 0 for unseen stems.
    pub fn table_score(&self, word: &str, table: &str) -> f64 {
        let s = stem(&word.to_lowercase());
        let tc = match self.token_counts.get(&s) {
            Some(c) => *c,
            None => return 0.0,
        };
        self.table_counts
            .get(&(s, table.to_lowercase()))
            .map(|c| c / tc)
            .unwrap_or(0.0)
    }

    /// Whether this stem occurred in training (the in-domain/OOD boundary).
    pub fn knows(&self, word: &str) -> bool {
        self.token_counts.contains_key(&stem(&word.to_lowercase()))
    }

    /// Fraction of a question's content stems seen in training — a direct
    /// measure of domain shift.
    pub fn coverage(&self, question: &str) -> f64 {
        let stems = Self::stems(question);
        if stems.is_empty() {
            return 1.0;
        }
        let known = stems
            .iter()
            .filter(|s| self.token_counts.contains_key(*s))
            .count();
        known as f64 / stems.len() as f64
    }

    pub fn example_count(&self) -> usize {
        self.examples
    }
}

/// Pre-order walk over every expression of a query, including subqueries.
pub fn walk_exprs(q: &Query, f: &mut impl FnMut(&Expr)) {
    fn walk_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
        f(e);
        match e {
            Expr::Agg { arg, .. } => walk_expr(arg, f),
            Expr::Binary { left, right, .. } => {
                walk_expr(left, f);
                walk_expr(right, f);
            }
            Expr::Not(inner) => walk_expr(inner, f),
            Expr::Like { expr, .. } | Expr::InList { expr, .. } | Expr::IsNull { expr, .. } => {
                walk_expr(expr, f)
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                walk_expr(expr, f);
                walk_expr(low, f);
                walk_expr(high, f);
            }
            Expr::InSubquery { expr, query, .. } => {
                walk_expr(expr, f);
                walk_exprs_inner(query, f);
            }
            Expr::ScalarSubquery(query) => walk_exprs_inner(query, f),
            Expr::Column(_) | Expr::Literal(_) | Expr::Star => {}
        }
    }
    fn walk_exprs_inner(q: &Query, f: &mut impl FnMut(&Expr)) {
        for item in &q.select.items {
            walk_expr(&item.expr, f);
        }
        if let Some(w) = &q.select.where_clause {
            walk_expr(w, f);
        }
        for g in &q.select.group_by {
            walk_expr(g, f);
        }
        if let Some(h) = &q.select.having {
            walk_expr(h, f);
        }
        for o in &q.select.order_by {
            walk_expr(&o.expr, f);
        }
        if let Some((_, rhs)) = &q.compound {
            walk_exprs_inner(rhs, f);
        }
    }
    walk_exprs_inner(q, f)
}

/// Mutable pre-order walk (same traversal as [`walk_exprs`]).
pub fn walk_exprs_mut(q: &mut Query, f: &mut impl FnMut(&mut Expr)) {
    fn walk_expr(e: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
        f(e);
        match e {
            Expr::Agg { arg, .. } => walk_expr(arg, f),
            Expr::Binary { left, right, .. } => {
                walk_expr(left, f);
                walk_expr(right, f);
            }
            Expr::Not(inner) => walk_expr(inner, f),
            Expr::Like { expr, .. } | Expr::InList { expr, .. } | Expr::IsNull { expr, .. } => {
                walk_expr(expr, f)
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                walk_expr(expr, f);
                walk_expr(low, f);
                walk_expr(high, f);
            }
            Expr::InSubquery { expr, query, .. } => {
                walk_expr(expr, f);
                walk_inner(query, f);
            }
            Expr::ScalarSubquery(query) => walk_inner(query, f),
            Expr::Column(_) | Expr::Literal(_) | Expr::Star => {}
        }
    }
    fn walk_inner(q: &mut Query, f: &mut impl FnMut(&mut Expr)) {
        for item in &mut q.select.items {
            walk_expr(&mut item.expr, f);
        }
        if let Some(w) = &mut q.select.where_clause {
            walk_expr(w, f);
        }
        for g in &mut q.select.group_by {
            walk_expr(g, f);
        }
        if let Some(h) = &mut q.select.having {
            walk_expr(h, f);
        }
        for o in &mut q.select.order_by {
            walk_expr(&mut o.expr, f);
        }
        if let Some((_, rhs)) = &mut q.compound {
            walk_inner(rhs, f);
        }
    }
    walk_inner(q, f)
}

/// Sketch string of a query: the abstract shape skeleton decoders predict.
pub fn sketch_of(q: &Query) -> String {
    let s = &q.select;
    let agg = s
        .items
        .iter()
        .find_map(|i| match &i.expr {
            Expr::Agg { func, .. } => Some(func.name()),
            _ => None,
        })
        .unwrap_or("NONE");
    let n_conds = s
        .where_clause
        .as_ref()
        .map(count_leaf_predicates)
        .unwrap_or(0);
    format!(
        "AGG:{agg}|COND:{n_conds}|GROUP:{}|HAVING:{}|ORDER:{}|LIMIT:{}|DISTINCT:{}",
        u8::from(!s.group_by.is_empty()),
        u8::from(s.having.is_some()),
        u8::from(!s.order_by.is_empty()),
        u8::from(s.limit.is_some()),
        u8::from(s.distinct),
    )
}

fn count_leaf_predicates(e: &Expr) -> usize {
    match e {
        Expr::Binary {
            left,
            op: nli_sql::BinOp::And | nli_sql::BinOp::Or,
            right,
        } => count_leaf_predicates(left) + count_leaf_predicates(right),
        _ => 1,
    }
}

/// Naive-Bayes sketch classifier over question stems.
#[derive(Debug, Clone, Default)]
pub struct SketchClassifier {
    /// class → (count, per-stem counts)
    classes: HashMap<String, (f64, HashMap<String, f64>)>,
    /// global document frequency per stem
    vocab: HashMap<String, f64>,
    total: f64,
}

impl SketchClassifier {
    pub fn new() -> Self {
        SketchClassifier::default()
    }

    pub fn train(&mut self, examples: &[TrainingExample]) {
        self.train_with(examples, sketch_of);
    }

    /// Train against an arbitrary label function — used to decompose the
    /// sketch into independent slot classifiers (SQLNet's seq-to-set
    /// decomposition predicts the aggregate and the condition count with
    /// separate heads, which is far more sample-efficient than a joint
    /// label space).
    pub fn train_with(&mut self, examples: &[TrainingExample], label: impl Fn(&Query) -> String) {
        for ex in examples {
            let label = label(&ex.sql);
            let entry = self.classes.entry(label).or_insert((0.0, HashMap::new()));
            entry.0 += 1.0;
            let mut stems = AlignmentModel::stems(&ex.question);
            stems.sort();
            stems.dedup();
            for s in stems {
                *entry.1.entry(s.clone()).or_insert(0.0) += 1.0;
                *self.vocab.entry(s).or_insert(0.0) += 1.0;
            }
            self.total += 1.0;
        }
    }

    /// Most probable sketch for a question, or `None` before training.
    ///
    /// Uses Bernoulli naive Bayes over stem *presence* (add-one smoothed
    /// per class example count): multinomial NB over raw counts is badly
    /// miscalibrated when class document lengths differ by an order of
    /// magnitude, which they do here (plain projections dominate every
    /// corpus).
    pub fn predict(&self, question: &str) -> Option<String> {
        if self.classes.is_empty() {
            return None;
        }
        let mut stems = AlignmentModel::stems(question);
        stems.sort();
        stems.dedup();
        // rare stems (values, names) carry no class signal and smoothing
        // would systematically favour small classes on them; the cutoff
        // scales with corpus size so tiny corpora keep their vocabulary
        let min_count = (self.total / 50.0).clamp(1.0, 3.0);
        stems.retain(|s| self.vocab.get(s).copied().unwrap_or(0.0) >= min_count);
        let mut best: Option<(f64, &String)> = None;
        // deterministic iteration: sort classes by name
        let mut class_names: Vec<&String> = self.classes.keys().collect();
        class_names.sort();
        for name in class_names {
            let (count, words) = &self.classes[name];
            let mut logp = (count / self.total).ln();
            for s in &stems {
                let c = words.get(s).copied().unwrap_or(0.0).min(*count);
                // m-estimate smoothing toward the stem's global rate keeps
                // class size out of the unseen-word term
                let prior = self.vocab.get(s).copied().unwrap_or(1.0) / self.total;
                let p = (c + 4.0 * prior) / (count + 4.0);
                logp += p.ln();
            }
            if best.is_none() || logp > best.unwrap().0 {
                best = Some((logp, name));
            }
        }
        best.map(|(_, name)| name.clone())
    }

    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Sample a class proportional to the prior — fallback when the
    /// question is fully out of vocabulary.
    pub fn sample_prior(&self, rng: &mut Prng) -> Option<String> {
        if self.classes.is_empty() {
            return None;
        }
        let mut names: Vec<&String> = self.classes.keys().collect();
        names.sort();
        let weights: Vec<f64> = names.iter().map(|n| self.classes[*n].0).collect();
        let i = rng.pick_weighted(&weights);
        Some(names[i].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nli_sql::parse_query;

    fn ex(q: &str, sql: &str) -> TrainingExample {
        TrainingExample {
            question: q.into(),
            sql: parse_query(sql).unwrap(),
        }
    }

    fn corpus() -> Vec<TrainingExample> {
        vec![
            ex("how many singers are there", "SELECT COUNT(*) FROM singer"),
            ex("count the singers", "SELECT COUNT(*) FROM singer"),
            ex(
                "what is the average age of singers",
                "SELECT AVG(age) FROM singer",
            ),
            ex(
                "names of singers older than 30",
                "SELECT name FROM singer WHERE age > 30",
            ),
            ex(
                "average price of each product category",
                "SELECT category, AVG(price) FROM products GROUP BY category",
            ),
        ]
    }

    #[test]
    fn alignment_learns_token_column_pairs() {
        let mut m = AlignmentModel::new();
        m.train(&corpus());
        assert!(m.column_score("age", "age") > 0.0);
        assert!(m.column_score("age", "price") == 0.0);
        assert!(m.table_score("singers", "singer") > m.table_score("singers", "products"));
        assert_eq!(m.example_count(), 5);
    }

    #[test]
    fn unseen_tokens_score_zero() {
        let mut m = AlignmentModel::new();
        m.train(&corpus());
        assert_eq!(m.column_score("xylophone", "age"), 0.0);
        assert!(!m.knows("xylophone"));
        assert!(m.knows("singers")); // stems to singer
    }

    #[test]
    fn coverage_measures_domain_shift() {
        let mut m = AlignmentModel::new();
        m.train(&corpus());
        let in_domain = m.coverage("average age of singers");
        let out_domain = m.coverage("total runway length of airports");
        assert!(in_domain > out_domain);
        assert!(in_domain > 0.9);
    }

    #[test]
    fn sketch_of_captures_shape() {
        let q = parse_query(
            "SELECT category, COUNT(*) FROM p GROUP BY category ORDER BY COUNT(*) DESC LIMIT 3",
        )
        .unwrap();
        let s = sketch_of(&q);
        assert!(s.contains("AGG:COUNT"));
        assert!(s.contains("GROUP:1"));
        assert!(s.contains("ORDER:1"));
        assert!(s.contains("LIMIT:1"));
    }

    #[test]
    fn sketch_classifier_predicts_trained_shapes() {
        let mut c = SketchClassifier::new();
        c.train(&corpus());
        let pred = c.predict("how many singers perform").unwrap();
        assert!(pred.contains("AGG:COUNT"), "{pred}");
        let pred = c.predict("what is the average age of teachers").unwrap();
        assert!(pred.contains("AGG:AVG"), "{pred}");
    }

    #[test]
    fn untrained_classifier_returns_none() {
        let c = SketchClassifier::new();
        assert!(c.predict("anything").is_none());
        assert!(c.sample_prior(&mut Prng::new(1)).is_none());
    }

    #[test]
    fn prior_sampling_is_deterministic() {
        let mut c = SketchClassifier::new();
        c.train(&corpus());
        let a = c.sample_prior(&mut Prng::new(3));
        let b = c.sample_prior(&mut Prng::new(3));
        assert_eq!(a, b);
        assert!(c.class_count() >= 3);
    }

    #[test]
    fn walkers_visit_subqueries() {
        let q = parse_query("SELECT a FROM t WHERE b IN (SELECT b FROM u WHERE c = 1) AND d = 2")
            .unwrap();
        let mut cols = Vec::new();
        walk_exprs(&q, &mut |e| {
            if let Expr::Column(c) = e {
                cols.push(c.column.clone());
            }
        });
        assert!(cols.contains(&"c".to_string()), "{cols:?}");
        let mut q2 = q.clone();
        let mut n = 0;
        walk_exprs_mut(&mut q2, &mut |e| {
            if matches!(e, Expr::Literal(_)) {
                n += 1;
            }
        });
        assert_eq!(n, 2);
    }
}
