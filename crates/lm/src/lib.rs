//! # nli-lm
//!
//! The foundation-model substrate of the reproduction. The paper's
//! foundation-language-model stage uses two model families we cannot ship:
//! fine-tuned pretrained language models (BERT/T5-class) and hosted large
//! language models (ChatGPT/Codex/PaLM-class). This crate substitutes both
//! with *mechanistic simulations* whose behaviour — not whose weights —
//! matches what the survey reports (see DESIGN.md §2):
//!
//! * [`plm::AlignmentModel`] and [`plm::SketchClassifier`] are genuinely
//!   *trainable* statistical models (co-occurrence alignment + naive Bayes)
//!   learned from (question, SQL) pairs. They improve with in-domain data
//!   and degrade out-of-domain — the PLM-stage signature.
//! * [`llm::SimulatedLlm`] is a seeded stochastic oracle with an explicit
//!   capability/noise model ([`noise::CapabilityProfile`]): it takes its
//!   internal reasoner's candidate program and corrupts it with
//!   schema-linking, join, value, clause and syntax errors at rates
//!   modulated by the [`prompt::PromptStrategy`] — zero-shot, few-shot
//!   in-context learning, chain-of-thought decomposition, self-consistency.
//! * [`prompt`] builds the actual prompt text (schema serialization +
//!   demonstration selection by random/similarity/diversity policies) and
//!   meters token usage, so prompting cost is measurable.

pub mod llm;
pub mod noise;
pub mod plm;
pub mod prompt;

pub use llm::{LlmKind, SimulatedLlm};
pub use noise::{CapabilityProfile, ErrorKind};
pub use plm::{
    sketch_of, walk_exprs, walk_exprs_mut, AlignmentModel, SketchClassifier, TrainingExample,
};
pub use prompt::{DemoSelection, Demonstration, Prompt, PromptStrategy};
