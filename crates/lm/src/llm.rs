//! The simulated large language model.
//!
//! A hosted LLM is replaced by a seeded stochastic oracle: the caller (an
//! LLM-stage parser) supplies the candidate program its "reasoning"
//! produced, and the simulated model *corrupts* it with the documented LLM
//! failure modes at rates set by the model tier ([`LlmKind`]) and scaled by
//! the prompting strategy. Every corruption operator manipulates the real
//! AST against the real schema, so downstream effects (invalid SQL, wrong
//! execution results, near-miss exact matches) are all genuine.
//!
//! The same operators double as the controlled error generator for the
//! metric meta-analysis (Table 3) and robustness studies (Table 4).

use crate::noise::{CapabilityProfile, ErrorKind};
use crate::plm::walk_exprs_mut;
use crate::prompt::{Prompt, PromptStrategy};
use nli_core::{Prng, Schema, Value};
use nli_sql::{AggFunc, BinOp, ColName, Expr, Query};
use parking_lot::Mutex;

/// Model tier, ordered by capability (error rates decrease downward), in
/// the spirit of the Codex → ChatGPT → PaLM-2/GPT-4 progression the survey
/// traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LlmKind {
    /// Code-model era (Rajkumar et al. zero-shot Codex).
    Codex,
    /// Chat-tuned era (Liu et al. ChatGPT evaluation, C3).
    ChatGpt,
    /// Frontier era (SQL-PaLM, DAIL-SQL-class results).
    Frontier,
}

impl LlmKind {
    pub fn name(self) -> &'static str {
        match self {
            LlmKind::Codex => "codex",
            LlmKind::ChatGpt => "chatgpt",
            LlmKind::Frontier => "frontier",
        }
    }

    /// Base (zero-shot) capability profile.
    pub fn base_profile(self) -> CapabilityProfile {
        match self {
            LlmKind::Codex => CapabilityProfile {
                schema_link: 0.16,
                join: 0.12,
                value: 0.10,
                clause: 0.10,
                aggregate: 0.06,
                syntax: 0.06,
            },
            LlmKind::ChatGpt => CapabilityProfile {
                schema_link: 0.11,
                join: 0.09,
                value: 0.07,
                clause: 0.07,
                aggregate: 0.04,
                syntax: 0.03,
            },
            LlmKind::Frontier => CapabilityProfile {
                schema_link: 0.06,
                join: 0.05,
                value: 0.04,
                clause: 0.04,
                aggregate: 0.02,
                syntax: 0.015,
            },
        }
    }
}

/// Cumulative usage accounting.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Usage {
    pub calls: u64,
    pub prompt_tokens: u64,
}

/// The simulated LLM.
#[derive(Debug)]
pub struct SimulatedLlm {
    kind: LlmKind,
    usage: Mutex<Usage>,
}

impl SimulatedLlm {
    pub fn new(kind: LlmKind) -> Self {
        SimulatedLlm {
            kind,
            usage: Mutex::new(Usage::default()),
        }
    }

    pub fn kind(&self) -> LlmKind {
        self.kind
    }

    pub fn usage(&self) -> Usage {
        *self.usage.lock()
    }

    /// The effective noise profile under a prompting strategy. The scale
    /// factors encode the survey's findings: in-context demonstrations
    /// mostly fix formatting/linking/value grounding; decomposition
    /// additionally fixes join-path and clause-structure errors;
    /// self-consistency samples at slightly reduced noise and relies on
    /// voting (done by the caller) for the rest.
    pub fn effective_profile(&self, strategy: PromptStrategy) -> CapabilityProfile {
        let base = self.kind.base_profile();
        match strategy {
            PromptStrategy::ZeroShot => base,
            PromptStrategy::FewShot { k, .. } => {
                let icl = 0.95f64.powi(k.min(16) as i32);
                base.with_scaled(ErrorKind::SchemaLink, 0.6 * icl)
                    .with_scaled(ErrorKind::Value, 0.55)
                    .with_scaled(ErrorKind::Syntax, 0.4)
                    .with_scaled(ErrorKind::Aggregate, 0.7)
            }
            PromptStrategy::Decomposed { k, .. } => {
                let icl = 0.95f64.powi(k.min(16) as i32);
                base.with_scaled(ErrorKind::SchemaLink, 0.5 * icl)
                    .with_scaled(ErrorKind::Value, 0.5)
                    .with_scaled(ErrorKind::Syntax, 0.25)
                    .with_scaled(ErrorKind::Aggregate, 0.6)
                    .with_scaled(ErrorKind::Join, 0.45)
                    .with_scaled(ErrorKind::Clause, 0.5)
            }
            PromptStrategy::SelfConsistency { .. } => base.scaled(0.9),
        }
    }

    /// One model call: meter the prompt, then emit the intent program with
    /// strategy-scaled noise applied. Returns SQL *text* (a syntax error
    /// corrupts the text itself, exactly like a real degenerate sample).
    pub fn generate(
        &self,
        intent: &Query,
        schema: &Schema,
        prompt: &Prompt,
        strategy: PromptStrategy,
        rng: &mut Prng,
    ) -> String {
        {
            let mut u = self.usage.lock();
            u.calls += 1;
            u.prompt_tokens += prompt.token_count() as u64;
        }
        let profile = self.effective_profile(strategy);
        corrupt_query(intent, schema, &profile, rng)
    }
}

/// Apply the capability-noise model to a query, returning SQL text.
/// Exposed for the metric meta-analysis harness.
pub fn corrupt_query(
    intent: &Query,
    schema: &Schema,
    profile: &CapabilityProfile,
    rng: &mut Prng,
) -> String {
    let mut q = intent.clone();
    if rng.chance(profile.schema_link) {
        corrupt_schema_link(&mut q, schema, rng);
    }
    if rng.chance(profile.join) {
        corrupt_join(&mut q, schema, rng);
    }
    if rng.chance(profile.value) {
        corrupt_value(&mut q, rng);
    }
    if rng.chance(profile.clause) {
        corrupt_clause(&mut q, rng);
    }
    if rng.chance(profile.aggregate) {
        corrupt_aggregate(&mut q, rng);
    }
    let mut text = q.to_string();
    if rng.chance(profile.syntax) {
        text = corrupt_syntax(&text, rng);
    }
    text
}

/// Replace one column reference with a sibling column of the same table.
fn corrupt_schema_link(q: &mut Query, schema: &Schema, rng: &mut Prng) {
    let mut n = 0usize;
    walk_exprs_mut(q, &mut |e| {
        if matches!(e, Expr::Column(_)) {
            n += 1;
        }
    });
    if n == 0 {
        return;
    }
    let target = rng.below(n);
    let mut i = 0usize;
    let pick = rng.fork(17);
    walk_exprs_mut(q, &mut |e| {
        if let Expr::Column(c) = e {
            if i == target {
                if let Some(new) = sibling_column(c, schema, &mut pick.clone()) {
                    c.column = new;
                }
            }
            i += 1;
        }
    });
}

/// A different column name from the same table (resolving unqualified names
/// across the schema); `None` when the table has a single column.
fn sibling_column(c: &ColName, schema: &Schema, rng: &mut Prng) -> Option<String> {
    let table = match &c.table {
        Some(t) => schema.table(t)?,
        None => schema
            .tables
            .iter()
            .find(|t| t.column_index(&c.column).is_some())?,
    };
    let others: Vec<&str> = table
        .columns
        .iter()
        .map(|col| col.name.as_str())
        .filter(|n| !n.eq_ignore_ascii_case(&c.column))
        .collect();
    if others.is_empty() {
        None
    } else {
        Some(rng.pick(&others).to_string())
    }
}

/// Break one side of a join condition.
fn corrupt_join(q: &mut Query, schema: &Schema, rng: &mut Prng) {
    if q.select.joins.is_empty() {
        return;
    }
    let ji = rng.below(q.select.joins.len());
    let j = &mut q.select.joins[ji];
    let side = if rng.chance(0.5) {
        &mut j.left
    } else {
        &mut j.right
    };
    if let Some(new) = sibling_column(side, schema, rng) {
        side.column = new;
    }
}

/// Perturb one literal.
fn corrupt_value(q: &mut Query, rng: &mut Prng) {
    let mut n = 0usize;
    walk_exprs_mut(q, &mut |e| {
        if matches!(e, Expr::Literal(_)) {
            n += 1;
        }
    });
    if n == 0 {
        return;
    }
    let target = rng.below(n);
    let delta = rng.range(1, 5);
    let flip = rng.chance(0.5);
    let mut i = 0usize;
    walk_exprs_mut(q, &mut |e| {
        if let Expr::Literal(v) = e {
            if i == target {
                *v = match &*v {
                    Value::Int(x) => Value::Int(x + delta),
                    Value::Float(x) => Value::Float(x * if flip { 1.5 } else { 0.5 }),
                    Value::Text(s) => {
                        if flip {
                            Value::Text(format!("{s}s"))
                        } else {
                            Value::Text(s.to_uppercase())
                        }
                    }
                    Value::Date(d) => Value::Date(nli_core::Date::new(d.year - 1, d.month, d.day)),
                    Value::Bool(b) => Value::Bool(!b),
                    Value::Null => Value::Int(0),
                };
            }
            i += 1;
        }
    });
}

/// Drop a clause: a WHERE conjunct, ORDER BY, LIMIT, or HAVING; with
/// nothing to drop, toggle DISTINCT.
fn corrupt_clause(q: &mut Query, rng: &mut Prng) {
    let mut options: Vec<u8> = Vec::new();
    if q.select.where_clause.is_some() {
        options.push(0);
    }
    if !q.select.order_by.is_empty() {
        options.push(1);
    }
    if q.select.limit.is_some() {
        options.push(2);
    }
    if q.select.having.is_some() {
        options.push(3);
    }
    match options.get(
        rng.below(options.len().max(1))
            .min(options.len().saturating_sub(1)),
    ) {
        Some(0) => {
            let w = q.select.where_clause.take().unwrap();
            q.select.where_clause = drop_one_conjunct(w, rng);
        }
        Some(1) => q.select.order_by.clear(),
        Some(2) => q.select.limit = None,
        Some(3) => q.select.having = None,
        _ => q.select.distinct = !q.select.distinct,
    }
}

/// Remove one top-level AND conjunct; `None` when it was the only one.
fn drop_one_conjunct(e: Expr, rng: &mut Prng) -> Option<Expr> {
    let mut parts = Vec::new();
    flatten_and(e, &mut parts);
    if parts.len() <= 1 {
        return None;
    }
    let drop = rng.below(parts.len());
    parts.remove(drop);
    let mut it = parts.into_iter();
    let first = it.next().unwrap();
    Some(it.fold(first, |acc, p| Expr::binary(acc, BinOp::And, p)))
}

fn flatten_and(e: Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Binary {
            left,
            op: BinOp::And,
            right,
        } => {
            flatten_and(*left, out);
            flatten_and(*right, out);
        }
        other => out.push(other),
    }
}

/// Swap one aggregate function for a different one.
fn corrupt_aggregate(q: &mut Query, rng: &mut Prng) {
    let mut n = 0usize;
    walk_exprs_mut(q, &mut |e| {
        if matches!(e, Expr::Agg { .. }) {
            n += 1;
        }
    });
    if n == 0 {
        return;
    }
    let target = rng.below(n);
    let step = 1 + rng.below(AggFunc::ALL.len() - 1);
    let mut i = 0usize;
    walk_exprs_mut(q, &mut |e| {
        if let Expr::Agg { func, arg, .. } = e {
            if i == target {
                let idx = AggFunc::ALL.iter().position(|f| f == func).unwrap();
                let mut new = AggFunc::ALL[(idx + step) % AggFunc::ALL.len()];
                // COUNT(*) cannot become SUM(*): retarget star aggregates
                // back to COUNT's neighbours only when arg is Star.
                if matches!(**arg, Expr::Star) {
                    new = AggFunc::Count;
                }
                *func = new;
            }
            i += 1;
        }
    });
}

/// Mangle the SQL text itself (degenerate sample).
fn corrupt_syntax(text: &str, rng: &mut Prng) -> String {
    let words: Vec<&str> = text.split_whitespace().collect();
    if words.len() <= 2 {
        return format!("{text} (");
    }
    match rng.below(3) {
        0 => {
            // delete a word from the middle
            let i = 1 + rng.below(words.len() - 2);
            let mut w = words.clone();
            w.remove(i);
            w.join(" ")
        }
        1 => format!("{text} AND"),
        _ => text.replacen("FROM", "FORM", 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::DemoSelection;
    use nli_core::{Column, DataType, Database, Table};
    use nli_sql::parse_query;

    fn schema() -> Schema {
        Schema::new(
            "shop",
            vec![
                Table::new(
                    "products",
                    vec![
                        Column::new("id", DataType::Int).primary(),
                        Column::new("name", DataType::Text),
                        Column::new("price", DataType::Float),
                    ],
                ),
                Table::new(
                    "sales",
                    vec![
                        Column::new("product_id", DataType::Int),
                        Column::new("amount", DataType::Float),
                    ],
                ),
            ],
        )
    }

    fn prompt() -> Prompt {
        let db = Database::empty(schema());
        Prompt::build(
            "total amount per product",
            None,
            &db,
            &[],
            0,
            DemoSelection::Random,
            &mut Prng::new(1),
        )
    }

    #[test]
    fn perfect_profile_is_identity() {
        let q =
            parse_query("SELECT name FROM products WHERE price > 5 ORDER BY price DESC").unwrap();
        let out = corrupt_query(
            &q,
            &schema(),
            &CapabilityProfile::perfect(),
            &mut Prng::new(1),
        );
        assert_eq!(out, q.to_string());
    }

    #[test]
    fn full_noise_always_changes_something() {
        let q = parse_query(
            "SELECT name FROM products WHERE price > 5 AND id < 9 ORDER BY price LIMIT 3",
        )
        .unwrap();
        let all = CapabilityProfile {
            schema_link: 1.0,
            join: 1.0,
            value: 1.0,
            clause: 1.0,
            aggregate: 1.0,
            syntax: 0.0,
        };
        for seed in 0..20 {
            let out = corrupt_query(&q, &schema(), &all, &mut Prng::new(seed));
            assert_ne!(out, q.to_string(), "seed {seed} produced the identity");
        }
    }

    #[test]
    fn syntax_corruption_breaks_parsing() {
        let q = parse_query("SELECT name FROM products WHERE price > 5").unwrap();
        let only_syntax = CapabilityProfile {
            syntax: 1.0,
            ..CapabilityProfile::perfect()
        };
        let mut broke = 0;
        for seed in 0..12 {
            let out = corrupt_query(&q, &schema(), &only_syntax, &mut Prng::new(seed));
            if parse_query(&out).is_err() {
                broke += 1;
            }
        }
        assert!(
            broke >= 8,
            "only {broke}/12 corrupted outputs failed to parse"
        );
    }

    #[test]
    fn schema_link_corruption_stays_schema_valid() {
        let q = parse_query("SELECT products.name FROM products WHERE products.price > 5").unwrap();
        let only_link = CapabilityProfile {
            schema_link: 1.0,
            ..CapabilityProfile::perfect()
        };
        let s = schema();
        for seed in 0..10 {
            let out = corrupt_query(&q, &s, &only_link, &mut Prng::new(seed));
            let parsed = parse_query(&out).unwrap();
            // every column still exists in the schema
            let mut ok = true;
            crate::plm::walk_exprs(&parsed, &mut |e| {
                if let Expr::Column(c) = e {
                    let t = c.table.as_deref().unwrap_or("products");
                    if s.resolve(t, &c.column).is_err() {
                        ok = false;
                    }
                }
            });
            assert!(ok, "corrupted column no longer in schema: {out}");
        }
    }

    #[test]
    fn clause_corruption_drops_exactly_one_thing() {
        let q = parse_query("SELECT name FROM products WHERE price > 5 AND id < 9").unwrap();
        let only_clause = CapabilityProfile {
            clause: 1.0,
            ..CapabilityProfile::perfect()
        };
        let out = corrupt_query(&q, &schema(), &only_clause, &mut Prng::new(4));
        let parsed = parse_query(&out).unwrap();
        // one conjunct must remain
        assert!(parsed.select.where_clause.is_some());
        assert_ne!(parsed, q);
    }

    #[test]
    fn strategy_ordering_of_clean_probability() {
        let llm = SimulatedLlm::new(LlmKind::ChatGpt);
        let zero = llm
            .effective_profile(PromptStrategy::ZeroShot)
            .clean_probability();
        let few = llm
            .effective_profile(PromptStrategy::FewShot {
                k: 4,
                selection: DemoSelection::Similarity,
            })
            .clean_probability();
        let dec = llm
            .effective_profile(PromptStrategy::Decomposed {
                k: 4,
                selection: DemoSelection::Similarity,
            })
            .clean_probability();
        assert!(zero < few, "few-shot must beat zero-shot");
        assert!(few < dec, "decomposition must beat plain few-shot");
    }

    #[test]
    fn model_tiers_are_ordered() {
        {
            let strategy = PromptStrategy::ZeroShot;
            let codex = SimulatedLlm::new(LlmKind::Codex)
                .effective_profile(strategy)
                .clean_probability();
            let chat = SimulatedLlm::new(LlmKind::ChatGpt)
                .effective_profile(strategy)
                .clean_probability();
            let frontier = SimulatedLlm::new(LlmKind::Frontier)
                .effective_profile(strategy)
                .clean_probability();
            assert!(codex < chat && chat < frontier);
        }
    }

    #[test]
    fn usage_is_metered() {
        let llm = SimulatedLlm::new(LlmKind::ChatGpt);
        let q = parse_query("SELECT name FROM products").unwrap();
        let p = prompt();
        let mut rng = Prng::new(1);
        llm.generate(&q, &schema(), &p, PromptStrategy::ZeroShot, &mut rng);
        llm.generate(&q, &schema(), &p, PromptStrategy::ZeroShot, &mut rng);
        let u = llm.usage();
        assert_eq!(u.calls, 2);
        assert!(u.prompt_tokens > 10);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let llm = SimulatedLlm::new(LlmKind::Codex);
        let q = parse_query("SELECT name FROM products WHERE price > 5").unwrap();
        let p = prompt();
        let a = llm.generate(
            &q,
            &schema(),
            &p,
            PromptStrategy::ZeroShot,
            &mut Prng::new(9),
        );
        let b = llm.generate(
            &q,
            &schema(),
            &p,
            PromptStrategy::ZeroShot,
            &mut Prng::new(9),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn aggregate_corruption_swaps_function() {
        let q = parse_query("SELECT AVG(price) FROM products").unwrap();
        let only_agg = CapabilityProfile {
            aggregate: 1.0,
            ..CapabilityProfile::perfect()
        };
        let out = corrupt_query(&q, &schema(), &only_agg, &mut Prng::new(2));
        assert!(!out.contains("AVG"), "{out}");
    }

    #[test]
    fn count_star_never_becomes_sum_star() {
        let q = parse_query("SELECT COUNT(*) FROM products").unwrap();
        let only_agg = CapabilityProfile {
            aggregate: 1.0,
            ..CapabilityProfile::perfect()
        };
        for seed in 0..10 {
            let out = corrupt_query(&q, &schema(), &only_agg, &mut Prng::new(seed));
            assert!(parse_query(&out).is_ok());
            assert!(out.contains("COUNT(*)"), "{out}");
        }
    }

    #[test]
    fn join_corruption_changes_join_condition() {
        let q = parse_query(
            "SELECT products.name FROM sales JOIN products ON sales.product_id = products.id",
        )
        .unwrap();
        let only_join = CapabilityProfile {
            join: 1.0,
            ..CapabilityProfile::perfect()
        };
        let mut changed = 0;
        for seed in 0..10 {
            let out = corrupt_query(&q, &schema(), &only_join, &mut Prng::new(seed));
            if out != q.to_string() {
                changed += 1;
            }
        }
        assert!(
            changed >= 8,
            "join corruption fired only {changed}/10 times"
        );
    }
}
