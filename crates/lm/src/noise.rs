//! The LLM capability/noise model.
//!
//! Each error kind corresponds to a failure mode the Text-to-SQL
//! literature documents for LLM-based parsers; the per-kind rates form a
//! [`CapabilityProfile`]. Prompting strategies scale the profile (few-shot
//! demonstrations reduce schema-linking and value errors; decomposition
//! reduces join and clause errors; self-correction reduces syntax errors),
//! reproducing the relative orderings of the survey's Table 2.

use serde::{Deserialize, Serialize};

/// A category of model error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorKind {
    /// Picked a wrong (but schema-valid) column or table.
    SchemaLink,
    /// Wrong join path / join condition.
    Join,
    /// Wrong literal value (off-by-some number, wrong string).
    Value,
    /// Dropped or invented a clause (condition, ORDER BY, LIMIT).
    Clause,
    /// Wrong aggregate function.
    Aggregate,
    /// Output is not even parseable SQL.
    Syntax,
}

impl ErrorKind {
    pub const ALL: [ErrorKind; 6] = [
        ErrorKind::SchemaLink,
        ErrorKind::Join,
        ErrorKind::Value,
        ErrorKind::Clause,
        ErrorKind::Aggregate,
        ErrorKind::Syntax,
    ];

    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::SchemaLink => "schema-link",
            ErrorKind::Join => "join",
            ErrorKind::Value => "value",
            ErrorKind::Clause => "clause",
            ErrorKind::Aggregate => "aggregate",
            ErrorKind::Syntax => "syntax",
        }
    }
}

/// Per-error-kind probabilities (each in `[0, 1]`, applied independently
/// per query).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapabilityProfile {
    pub schema_link: f64,
    pub join: f64,
    pub value: f64,
    pub clause: f64,
    pub aggregate: f64,
    pub syntax: f64,
}

impl CapabilityProfile {
    pub fn rate(&self, kind: ErrorKind) -> f64 {
        match kind {
            ErrorKind::SchemaLink => self.schema_link,
            ErrorKind::Join => self.join,
            ErrorKind::Value => self.value,
            ErrorKind::Clause => self.clause,
            ErrorKind::Aggregate => self.aggregate,
            ErrorKind::Syntax => self.syntax,
        }
    }

    /// Scale every rate by `factor`, clamped to `[0, 1]`.
    pub fn scaled(&self, factor: f64) -> CapabilityProfile {
        let s = |x: f64| (x * factor).clamp(0.0, 1.0);
        CapabilityProfile {
            schema_link: s(self.schema_link),
            join: s(self.join),
            value: s(self.value),
            clause: s(self.clause),
            aggregate: s(self.aggregate),
            syntax: s(self.syntax),
        }
    }

    /// Scale one kind only.
    pub fn with_scaled(&self, kind: ErrorKind, factor: f64) -> CapabilityProfile {
        let mut p = *self;
        let slot = match kind {
            ErrorKind::SchemaLink => &mut p.schema_link,
            ErrorKind::Join => &mut p.join,
            ErrorKind::Value => &mut p.value,
            ErrorKind::Clause => &mut p.clause,
            ErrorKind::Aggregate => &mut p.aggregate,
            ErrorKind::Syntax => &mut p.syntax,
        };
        *slot = (*slot * factor).clamp(0.0, 1.0);
        p
    }

    /// Probability that *no* error fires — an upper bound on per-query
    /// accuracy for this profile.
    pub fn clean_probability(&self) -> f64 {
        ErrorKind::ALL.iter().map(|k| 1.0 - self.rate(*k)).product()
    }

    /// A perfect model (all rates zero) — used by oracle baselines.
    pub fn perfect() -> CapabilityProfile {
        CapabilityProfile {
            schema_link: 0.0,
            join: 0.0,
            value: 0.0,
            clause: 0.0,
            aggregate: 0.0,
            syntax: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_clamps_to_unit_interval() {
        let p = CapabilityProfile {
            schema_link: 0.8,
            join: 0.5,
            value: 0.2,
            clause: 0.1,
            aggregate: 0.1,
            syntax: 0.05,
        };
        let up = p.scaled(10.0);
        assert_eq!(up.schema_link, 1.0);
        let down = p.scaled(0.0);
        assert_eq!(down.clean_probability(), 1.0);
    }

    #[test]
    fn clean_probability_is_product_of_complements() {
        let p = CapabilityProfile {
            schema_link: 0.5,
            join: 0.5,
            value: 0.0,
            clause: 0.0,
            aggregate: 0.0,
            syntax: 0.0,
        };
        assert!((p.clean_probability() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn with_scaled_touches_only_one_kind() {
        let p = CapabilityProfile::perfect().with_scaled(ErrorKind::Join, 2.0);
        assert_eq!(p.join, 0.0); // 0 * 2 is still 0
        let mut q = CapabilityProfile::perfect();
        q.join = 0.4;
        let q2 = q.with_scaled(ErrorKind::Join, 0.5);
        assert!((q2.join - 0.2).abs() < 1e-12);
        assert_eq!(q2.schema_link, 0.0);
    }

    #[test]
    fn rates_round_trip_through_rate() {
        let p = CapabilityProfile {
            schema_link: 0.1,
            join: 0.2,
            value: 0.3,
            clause: 0.4,
            aggregate: 0.5,
            syntax: 0.6,
        };
        for k in ErrorKind::ALL {
            assert!(p.rate(k) > 0.0, "{}", k.name());
        }
        assert_eq!(p.rate(ErrorKind::Value), 0.3);
    }
}
