//! LLM-stage parsing (C3 / DIN-SQL / SQL-PaLM / DAIL-SQL-class).
//!
//! The parser couples an internal reasoner (the grammar parser with full
//! world knowledge and evidence resolution — the "pretraining" of the
//! simulated model) with a [`SimulatedLlm`] that corrupts the reasoner's
//! program at strategy-dependent rates (see `nli-lm`). The prompting
//! strategies implement the survey's LLM techniques:
//!
//! * **zero-shot** (Rajkumar et al., Liu et al., C3): one call, base noise;
//! * **few-shot ICL** (Nan et al.): demonstrations selected from a pool by
//!   random/similarity/diversity policy, reduced linking/value noise;
//! * **decomposed + self-correction** (DIN-SQL): lowest structural noise,
//!   plus a repair loop that re-prompts when the output fails to parse or
//!   execute;
//! * **self-consistency** (SQL-PaLM): `n` samples, majority vote on
//!   execution results.

use crate::grammar::{GrammarConfig, GrammarParser};
use nli_core::{Database, ExecutionEngine, NlQuestion, NliError, Prng, Result, SemanticParser};
use nli_lm::{Demonstration, LlmKind, Prompt, PromptStrategy, SimulatedLlm};
use nli_sql::{parse_query, Query, SqlEngine};

/// LLM-prompted Text-to-SQL parser.
pub struct LlmParser {
    reasoner: GrammarParser,
    model: SimulatedLlm,
    strategy: PromptStrategy,
    demo_pool: Vec<Demonstration>,
    seed: u64,
    name: String,
}

impl LlmParser {
    pub fn new(kind: LlmKind, strategy: PromptStrategy, seed: u64) -> LlmParser {
        let name = format!("llm-{}-{}", kind.name(), strategy.name());
        LlmParser {
            reasoner: GrammarParser::new(GrammarConfig::llm_reasoner()),
            model: SimulatedLlm::new(kind),
            strategy,
            demo_pool: Vec::new(),
            seed,
            name,
        }
    }

    /// Provide the demonstration pool for few-shot strategies.
    pub fn with_demo_pool(mut self, pool: Vec<Demonstration>) -> LlmParser {
        self.demo_pool = pool;
        self
    }

    pub fn model(&self) -> &SimulatedLlm {
        &self.model
    }

    fn question_rng(&self, question: &NlQuestion) -> Prng {
        // deterministic per question: same question, same sample stream
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in question.text.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        Prng::new(self.seed ^ h)
    }

    fn build_prompt(&self, question: &NlQuestion, db: &Database, rng: &mut Prng) -> Prompt {
        let (k, selection) = match self.strategy {
            PromptStrategy::FewShot { k, selection }
            | PromptStrategy::Decomposed { k, selection } => (k, selection),
            _ => (0, nli_lm::DemoSelection::Random),
        };
        Prompt::build(
            &question.text,
            question.evidence.as_deref(),
            db,
            &self.demo_pool,
            k,
            selection,
            rng,
        )
    }
}

impl SemanticParser for LlmParser {
    type Expr = Query;

    fn parse(&self, question: &NlQuestion, db: &Database) -> Result<Query> {
        let intent = self.reasoner.parse(question, db)?;
        let mut rng = self.question_rng(question);
        let prompt = self.build_prompt(question, db, &mut rng);
        let engine = SqlEngine::new();

        match self.strategy {
            PromptStrategy::SelfConsistency { n } => {
                // sample n programs; vote on canonicalized execution results
                let mut buckets: Vec<(Vec<Vec<String>>, Query, usize)> = Vec::new();
                let mut first_parseable: Option<Query> = None;
                for i in 0..n.max(1) {
                    let mut s_rng = rng.fork(i as u64);
                    let text = self.model.generate(
                        &intent,
                        &db.schema,
                        &prompt,
                        self.strategy,
                        &mut s_rng,
                    );
                    let Ok(q) = parse_query(&text) else { continue };
                    if first_parseable.is_none() {
                        first_parseable = Some(q.clone());
                    }
                    let Ok(rs) = engine.run_sql(&text, db) else {
                        continue;
                    };
                    let key = rs.canonical_rows();
                    match buckets.iter_mut().find(|(k, _, _)| *k == key) {
                        Some((_, _, count)) => *count += 1,
                        None => buckets.push((key, q, 1)),
                    }
                }
                buckets
                    .into_iter()
                    .max_by_key(|(_, _, c)| *c)
                    .map(|(_, q, _)| q)
                    .or(first_parseable)
                    .ok_or_else(|| NliError::Model("no consistent sample parsed".into()))
            }
            PromptStrategy::Decomposed { .. } => {
                // self-correction loop: re-prompt while the output is
                // broken, up to two repairs (DIN-SQL's correction module)
                let mut last_err = String::new();
                for attempt in 0..3u64 {
                    let mut s_rng = rng.fork(attempt);
                    let text = self.model.generate(
                        &intent,
                        &db.schema,
                        &prompt,
                        self.strategy,
                        &mut s_rng,
                    );
                    match parse_query(&text) {
                        Ok(q) => match engine.execute(&q, db) {
                            Ok(_) => return Ok(q),
                            Err(e) => last_err = e.to_string(),
                        },
                        Err(e) => last_err = e.to_string(),
                    }
                }
                Err(NliError::Model(format!(
                    "self-correction exhausted: {last_err}"
                )))
            }
            _ => {
                let text =
                    self.model
                        .generate(&intent, &db.schema, &prompt, self.strategy, &mut rng);
                parse_query(&text).map_err(|e| NliError::Model(format!("degenerate sample: {e}")))
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nli_core::{Column, DataType, Schema, Table};
    use nli_lm::DemoSelection;

    fn db() -> Database {
        let schema = Schema::new(
            "d",
            vec![Table::new(
                "products",
                vec![
                    Column::new("id", DataType::Int).primary(),
                    Column::new("name", DataType::Text),
                    Column::new("price", DataType::Float),
                ],
            )],
        );
        let mut d = Database::empty(schema);
        d.insert_all(
            "products",
            vec![
                vec![1.into(), "Widget".into(), 9.5.into()],
                vec![2.into(), "Gadget".into(), 19.0.into()],
            ],
        )
        .unwrap();
        d
    }

    fn eval(parser: &LlmParser, questions: &[(&str, &str)]) -> usize {
        let d = db();
        questions
            .iter()
            .filter(|(q, gold)| {
                parser
                    .parse(&NlQuestion::new(*q), &d)
                    .map(|p| p.to_string() == *gold)
                    .unwrap_or(false)
            })
            .count()
    }

    const QS: &[(&str, &str)] = &[
        (
            "How many products are there?",
            "SELECT COUNT(*) FROM products",
        ),
        (
            "List the name of products with price above 5.",
            "SELECT name FROM products WHERE price > 5",
        ),
        (
            "What is the average price of products?",
            "SELECT AVG(price) FROM products",
        ),
        (
            "Show the name of products with the maximum price.",
            "SELECT name FROM products WHERE price = (SELECT MAX(price) FROM products)",
        ),
        (
            "List the name of products whose name contains 'Wid'.",
            "SELECT name FROM products WHERE name LIKE '%Wid%'",
        ),
    ];

    #[test]
    fn deterministic_per_question() {
        let p = LlmParser::new(LlmKind::ChatGpt, PromptStrategy::ZeroShot, 7);
        let d = db();
        let q = NlQuestion::new("How many products are there?");
        let a = p.parse(&q, &d).map(|x| x.to_string());
        let b = p.parse(&q, &d).map(|x| x.to_string());
        assert_eq!(a.ok(), b.ok());
    }

    #[test]
    fn decomposed_beats_zero_shot_on_average() {
        // aggregate over many seeds so the stochastic corruption averages out
        let mut zero_total = 0;
        let mut dec_total = 0;
        for seed in 0..12 {
            let zero = LlmParser::new(LlmKind::Codex, PromptStrategy::ZeroShot, seed);
            let dec = LlmParser::new(
                LlmKind::Codex,
                PromptStrategy::Decomposed {
                    k: 4,
                    selection: DemoSelection::Similarity,
                },
                seed,
            );
            zero_total += eval(&zero, QS);
            dec_total += eval(&dec, QS);
        }
        assert!(
            dec_total >= zero_total,
            "decomposed {dec_total} should not lose to zero-shot {zero_total}"
        );
    }

    #[test]
    fn self_consistency_returns_a_majority_program() {
        let p = LlmParser::new(
            LlmKind::ChatGpt,
            PromptStrategy::SelfConsistency { n: 5 },
            3,
        );
        let d = db();
        let q = NlQuestion::new("How many products are there?");
        let out = p.parse(&q, &d).unwrap();
        // with 5 samples at ChatGPT noise, the majority is the clean program
        assert_eq!(out.to_string(), "SELECT COUNT(*) FROM products");
    }

    #[test]
    fn prompt_usage_is_metered() {
        let p = LlmParser::new(LlmKind::Frontier, PromptStrategy::ZeroShot, 1);
        let d = db();
        let _ = p.parse(&NlQuestion::new("How many products are there?"), &d);
        assert!(p.model().usage().calls >= 1);
        assert!(p.model().usage().prompt_tokens > 0);
    }

    #[test]
    fn evidence_flows_through_to_the_reasoner() {
        let p = LlmParser::new(LlmKind::Frontier, PromptStrategy::ZeroShot, 2);
        let d = db();
        let q = NlQuestion::new("How many products with a high price are there?")
            .with_evidence("a high price means price greater than 10");
        // frontier noise is low; most seeds produce the clean program
        let out = p.parse(&q, &d).unwrap().to_string();
        assert!(out.contains("COUNT(*)"), "{out}");
    }

    #[test]
    fn names_encode_kind_and_strategy() {
        let p = LlmParser::new(
            LlmKind::ChatGpt,
            PromptStrategy::FewShot {
                k: 4,
                selection: DemoSelection::Diversity,
            },
            0,
        );
        assert_eq!(p.name(), "llm-chatgpt-few-shot");
    }
}
