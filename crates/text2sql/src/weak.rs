//! Weakly supervised training (§6.3 of the survey).
//!
//! The survey points to semi-/weakly supervised methods — "learning from
//! mistakes", implicit user feedback — as the way past expensive gold-SQL
//! annotation. This module implements the classic weak-supervision recipe:
//! given only (question, *answer*) pairs, search for candidate programs,
//! keep the ones whose execution produces the expected answer (spurious
//! programs and all), and use them as pseudo-gold supervision for the PLM
//! family.
//!
//! The search space is the grammar parser's candidate generator (run with
//! the strong world-knowledge configuration, playing the role of the
//! exploration policy), so discovered programs are well-formed by
//! construction.

use crate::grammar::{GrammarConfig, GrammarParser};
use nli_core::{Database, ExecutionEngine, NlQuestion};
use nli_lm::TrainingExample;
use nli_sql::{Query, ResultSet, SqlEngine};

/// One weakly labeled example: a question and the answer a user accepted.
#[derive(Debug, Clone)]
pub struct WeakExample {
    pub question: NlQuestion,
    /// The accepted result, as canonical rows (order-insensitive).
    pub answer: Vec<Vec<String>>,
}

impl WeakExample {
    /// Build from a question and an executed result.
    pub fn from_result(question: NlQuestion, result: &ResultSet) -> WeakExample {
        WeakExample {
            question,
            answer: result.canonical_rows(),
        }
    }
}

/// Outcome of a weak-supervision search.
#[derive(Debug, Clone, Default)]
pub struct WeakHarvest {
    /// Pseudo-gold examples whose execution matched the answer.
    pub examples: Vec<TrainingExample>,
    /// Questions where no candidate matched.
    pub misses: usize,
    /// Executor calls spent searching.
    pub executor_calls: usize,
}

/// Search candidate programs for each weak example and keep answer-matching
/// ones as pseudo-gold supervision.
pub fn harvest(weak: &[(usize, WeakExample)], databases: &[Database], beam: usize) -> WeakHarvest {
    let explorer = GrammarParser::new(GrammarConfig::llm_reasoner().named("weak-explorer"));
    let engine = SqlEngine::new();
    let mut out = WeakHarvest::default();
    for (db_idx, ex) in weak {
        let db = &databases[*db_idx];
        let candidates = explorer.parse_candidates(&ex.question, db, beam.max(1));
        let mut found: Option<Query> = None;
        for cand in candidates {
            out.executor_calls += 1;
            if let Ok(rs) = engine.execute(&cand, db) {
                if rs.canonical_rows() == ex.answer {
                    found = Some(cand);
                    break;
                }
            }
        }
        match found {
            Some(sql) => out.examples.push(TrainingExample {
                question: ex.question.text.clone(),
                sql,
            }),
            None => out.misses += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plm::PlmParser;
    use nli_data::spider_like::{self, SpiderConfig};
    use nli_metrics::evaluate_sql;

    fn bench() -> nli_data::SqlBenchmark {
        spider_like::build(&SpiderConfig {
            n_databases: 13,
            n_dev_databases: 3,
            n_train: 80,
            n_dev: 50,
            ..Default::default()
        })
    }

    /// Turn the benchmark's train split into answer-only supervision.
    fn weaken(b: &nli_data::SqlBenchmark) -> Vec<(usize, WeakExample)> {
        let engine = SqlEngine::new();
        b.train
            .iter()
            .map(|e| {
                let rs = engine.execute(&e.gold, &b.databases[e.db]).unwrap();
                (e.db, WeakExample::from_result(e.question.clone(), &rs))
            })
            .collect()
    }

    #[test]
    fn harvest_recovers_most_programs_from_answers_alone() {
        let b = bench();
        let weak = weaken(&b);
        let h = harvest(&weak, &b.databases, 4);
        assert!(
            h.examples.len() * 3 >= weak.len() * 2,
            "harvested only {}/{} (misses {})",
            h.examples.len(),
            weak.len(),
            h.misses
        );
        assert!(h.executor_calls >= h.examples.len());
    }

    #[test]
    fn weakly_trained_plm_approaches_fully_supervised() {
        let b = bench();
        // fully supervised baseline
        let full: Vec<TrainingExample> = b
            .train
            .iter()
            .map(|e| TrainingExample {
                question: e.question.text.clone(),
                sql: e.gold.clone(),
            })
            .collect();
        let mut supervised = PlmParser::new();
        supervised.train(&full);
        let sup = evaluate_sql(&supervised, &b);

        // weakly supervised: answers only
        let h = harvest(&weaken(&b), &b.databases, 4);
        let mut weakly = PlmParser::new();
        weakly.train(&h.examples);
        let weak_scores = evaluate_sql(&weakly, &b);

        assert!(
            weak_scores.execution >= sup.execution - 0.15,
            "weak supervision fell too far behind: weak {weak_scores:?} vs full {sup:?}"
        );
    }

    #[test]
    fn unmatchable_answers_are_counted_as_misses() {
        let b = bench();
        let bogus = vec![(
            0usize,
            WeakExample {
                question: NlQuestion::new("How many products are there?"),
                answer: vec![vec!["999999999".to_string()]],
            },
        )];
        let h = harvest(&bogus, &b.databases, 4);
        assert_eq!(h.misses, 1);
        assert!(h.examples.is_empty());
    }
}
