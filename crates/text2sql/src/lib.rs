//! # nli-text2sql
//!
//! One working semantic parser per cell of the survey's Text-to-SQL
//! approach taxonomy (§4.1 / Table 2):
//!
//! | Stage | Family | Parser here | Real-world exemplars |
//! |---|---|---|---|
//! | Traditional | rule-based, ranking | [`rule::RuleBasedParser`] | NaLIR, PRECISE, ATHENA |
//! | Neural | skeleton/slot-filling decoder | [`skeleton::SkeletonParser`] | SQLNet, TypeSQL, HydraNet, SQLova |
//! | Neural | grammar-based decoder + graph schema encoding | [`grammar::GrammarParser`] | IRNet, RAT-SQL, LGESQL, PICARD |
//! | Neural | execution-guided decoding | [`execution_guided::ExecutionGuided`] | Wang et al. 2018, SQLova-EG |
//! | FM / PLM | fine-tuned encoder(-decoder) | [`plm::PlmParser`] | BRIDGE, UnifiedSKG, RESDSQL |
//! | FM / LLM | prompted LLM (zero/few-shot, decomposed, self-consistent) | [`llm::LlmParser`] | C3, DIN-SQL, SQL-PaLM, DAIL-SQL |
//! | — | conversation editing | [`multiturn::DialogueParser`] | EditSQL, IST-SQL |
//!
//! All parsers share the [`linking`] schema-linking substrate and the
//! [`analysis`] shallow question analyzer, and differ in exactly the ways
//! the survey describes: which linking signals they can use (lexical only
//! vs. learned vs. embedding/synonym "world knowledge"), which SQL shapes
//! their decoder can emit, and whether generation is constrained/validated.

pub mod analysis;
pub mod evidence;
pub mod execution_guided;
pub mod grammar;
pub mod linking;
pub mod llm;
pub mod multiturn;
pub mod plm;
pub mod rule;
pub mod skeleton;
pub mod weak;

pub use analysis::{analyze, QuestionAnalysis};
pub use execution_guided::{CandidateParser, ExecutionGuided};
pub use grammar::{GrammarConfig, GrammarParser};
pub use linking::{LinkConfig, Linker, LinkingResult};
pub use llm::LlmParser;
pub use multiturn::DialogueParser;
pub use plm::PlmParser;
pub use rule::RuleBasedParser;
pub use skeleton::SkeletonParser;
pub use weak::{harvest, WeakExample, WeakHarvest};
