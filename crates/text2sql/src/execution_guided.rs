//! Execution-guided decoding (Wang et al. 2018 / SQLova-EG-class).
//!
//! Wraps any candidate-producing parser and uses the SQL engine as an
//! oracle during decoding: candidates that fail to execute are discarded,
//! and (optionally) candidates with empty results are deprioritized. This
//! trades extra executor calls for guaranteed-executable output — the exact
//! cost/benefit the survey describes for execution-based decoders, measured
//! by the `bench_parsers` ablation.

use nli_core::{Database, ExecutionEngine, NlQuestion, NliError, Result, SemanticParser};
use nli_sql::{Query, SqlEngine};
use std::sync::atomic::{AtomicU64, Ordering};

/// A parser that can emit ranked candidates.
pub trait CandidateParser {
    fn candidates(&self, question: &NlQuestion, db: &Database, k: usize) -> Vec<Query>;
    fn base_name(&self) -> &str;
}

impl CandidateParser for crate::grammar::GrammarParser {
    fn candidates(&self, question: &NlQuestion, db: &Database, k: usize) -> Vec<Query> {
        self.parse_candidates(question, db, k)
    }
    fn base_name(&self) -> &str {
        use nli_core::SemanticParser as _;
        self.name()
    }
}

impl CandidateParser for crate::rule::RuleBasedParser {
    fn candidates(&self, question: &NlQuestion, db: &Database, k: usize) -> Vec<Query> {
        crate::rule::RuleBasedParser::candidates(self, question, db, k)
    }
    fn base_name(&self) -> &str {
        use nli_core::SemanticParser as _;
        self.name()
    }
}

/// Execution-guided wrapper.
pub struct ExecutionGuided<P: CandidateParser> {
    base: P,
    name: String,
    beam: usize,
    /// Prefer candidates whose execution returns at least one row.
    prefer_nonempty: bool,
    /// The oracle engine, held for the parser's lifetime: its plan cache
    /// makes repeated candidates (common across a beam and across
    /// questions on one schema) cost a plan lookup, not a parse.
    engine: SqlEngine,
    executor_calls: AtomicU64,
}

impl<P: CandidateParser> ExecutionGuided<P> {
    pub fn new(base: P, beam: usize, prefer_nonempty: bool) -> Self {
        let name = format!("{}+eg", base.base_name());
        ExecutionGuided {
            base,
            name,
            beam: beam.max(1),
            prefer_nonempty,
            engine: SqlEngine::new(),
            executor_calls: AtomicU64::new(0),
        }
    }

    /// Executor calls spent so far (the cost side of the trade-off).
    pub fn executor_calls(&self) -> u64 {
        self.executor_calls.load(Ordering::Relaxed)
    }
}

impl<P: CandidateParser> SemanticParser for ExecutionGuided<P> {
    type Expr = Query;

    fn parse(&self, question: &NlQuestion, db: &Database) -> Result<Query> {
        let candidates = self.base.candidates(question, db, self.beam);
        if candidates.is_empty() {
            return Err(NliError::Parse("no candidates".into()));
        }
        let mut executable_but_empty: Option<Query> = None;
        for q in candidates {
            self.executor_calls.fetch_add(1, Ordering::Relaxed);
            // execute the AST directly — no render-to-string + re-parse
            match self.engine.execute(&q, db) {
                Ok(rs) => {
                    if !self.prefer_nonempty || !rs.rows.is_empty() {
                        return Ok(q);
                    }
                    if executable_but_empty.is_none() {
                        executable_but_empty = Some(q);
                    }
                }
                Err(_) => continue,
            }
        }
        executable_but_empty.ok_or_else(|| NliError::Parse("no executable candidate".into()))
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::{GrammarConfig, GrammarParser};
    use nli_core::{Column, DataType, Schema, Table};

    fn db() -> Database {
        let schema = Schema::new(
            "d",
            vec![Table::new(
                "products",
                vec![
                    Column::new("id", DataType::Int).primary(),
                    Column::new("name", DataType::Text),
                    Column::new("price", DataType::Float),
                ],
            )],
        );
        let mut d = Database::empty(schema);
        d.insert_all(
            "products",
            vec![
                vec![1.into(), "Widget".into(), 9.5.into()],
                vec![2.into(), "Gadget".into(), 19.0.into()],
            ],
        )
        .unwrap();
        d
    }

    #[test]
    fn wraps_a_grammar_parser_and_executes() {
        let eg = ExecutionGuided::new(GrammarParser::new(GrammarConfig::neural()), 4, false);
        let q = NlQuestion::new("How many products with price greater than 5 are there?");
        let sql = eg.parse(&q, &db()).unwrap();
        assert_eq!(
            sql.to_string(),
            "SELECT COUNT(*) FROM products WHERE price > 5"
        );
        assert!(eg.executor_calls() >= 1);
        assert_eq!(eg.name(), "grammar-neural+eg");
    }

    #[test]
    fn all_outputs_are_executable() {
        let eg = ExecutionGuided::new(GrammarParser::new(GrammarConfig::neural()), 4, false);
        let d = db();
        let engine = SqlEngine::new();
        for q in [
            "List the name of products with price above 5.",
            "What is the average price of products?",
            "Show the name of products with the maximum price.",
        ] {
            let parsed = eg.parse(&NlQuestion::new(q), &d).unwrap();
            engine.run_sql(&parsed.to_string(), &d).unwrap();
        }
    }

    #[test]
    fn nonempty_preference_falls_back_to_executable() {
        let eg = ExecutionGuided::new(GrammarParser::new(GrammarConfig::neural()), 4, true);
        // no product is priced above 1000: result is empty but executable
        let q = NlQuestion::new("List the name of products with price above 1000.");
        let parsed = eg.parse(&q, &db()).unwrap();
        assert!(parsed.to_string().contains("1000"));
    }

    #[test]
    fn unparseable_question_is_an_error() {
        let eg = ExecutionGuided::new(GrammarParser::new(GrammarConfig::neural()), 4, false);
        assert!(eg.parse(&NlQuestion::new("qwerty zxcv"), &db()).is_err());
    }
}
