//! BIRD-style evidence parsing.
//!
//! Knowledge-grounded benchmarks attach evidence strings like
//! `"a high price means price greater than 250"`. Parsers that support
//! external knowledge (the LLM stage, per the survey's BIRD discussion)
//! resolve concept conditions ("with a high price") through these rules.

use nli_core::Value;
use nli_nlu::tokenize;
use nli_sql::BinOp;

/// One resolved concept definition.
#[derive(Debug, Clone, PartialEq)]
pub struct EvidenceRule {
    /// `true` for "high", `false` for "low".
    pub high: bool,
    pub col_phrase: String,
    pub op: BinOp,
    pub value: Value,
}

/// Parse an evidence string (`;`-separated rules).
pub fn parse_evidence(text: &str) -> Vec<EvidenceRule> {
    text.split(';').filter_map(parse_rule).collect()
}

fn parse_rule(rule: &str) -> Option<EvidenceRule> {
    // expected: "a high <col...> means <col...> greater than <v>"
    let toks = tokenize(rule);
    let words: Vec<String> = toks.iter().map(|t| t.text.to_lowercase()).collect();
    let concept_pos = words.iter().position(|w| w == "high" || w == "low")?;
    let high = words[concept_pos] == "high";
    let means_pos = words.iter().position(|w| w == "means")?;
    if means_pos <= concept_pos + 1 {
        return None;
    }
    let col_phrase = words[concept_pos + 1..means_pos].join(" ");
    // comparator after "means"
    let tail = &words[means_pos + 1..];
    let op = if tail.iter().any(|w| w == "greater") || tail.iter().any(|w| w == "more") {
        BinOp::Gt
    } else if tail.iter().any(|w| w == "less") {
        BinOp::Lt
    } else {
        BinOp::Eq
    };
    // last numeric token is the threshold
    let value = toks.iter().rev().find_map(|t| {
        if t.kind == nli_nlu::TokenKind::Number {
            let n: f64 = t.text.parse().ok()?;
            Some(if n.fract() == 0.0 {
                Value::Int(n as i64)
            } else {
                Value::Float(n)
            })
        } else {
            None
        }
    })?;
    Some(EvidenceRule {
        high,
        col_phrase,
        op,
        value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_high_rule() {
        let rules = parse_evidence("a high price means price greater than 250");
        assert_eq!(rules.len(), 1);
        assert!(rules[0].high);
        assert_eq!(rules[0].col_phrase, "price");
        assert_eq!(rules[0].op, BinOp::Gt);
        assert_eq!(rules[0].value, Value::Int(250));
    }

    #[test]
    fn parses_low_rule_with_float() {
        let rules = parse_evidence("a low gpa means gpa less than 2.5");
        assert!(!rules[0].high);
        assert_eq!(rules[0].op, BinOp::Lt);
        assert_eq!(rules[0].value, Value::Float(2.5));
    }

    #[test]
    fn multiword_columns_and_multiple_rules() {
        let rules = parse_evidence(
            "a high ticket price means ticket price greater than 900; a low distance means distance less than 500",
        );
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].col_phrase, "ticket price");
        assert_eq!(rules[1].col_phrase, "distance");
    }

    #[test]
    fn garbage_evidence_yields_nothing() {
        assert!(parse_evidence("the sky is blue").is_empty());
        assert!(parse_evidence("").is_empty());
        assert!(parse_evidence("a high price").is_empty());
    }
}
