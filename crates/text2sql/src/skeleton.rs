//! Skeleton/slot-filling parsing (SQLNet/TypeSQL/HydraNet/SQLova-class).
//!
//! The skeleton decoder predicts an abstract SQL *sketch* with a trained
//! classifier and then fills its slots, instead of generating the query
//! compositionally. That design is why this family dominates WikiSQL (the
//! sketch space is tiny) and collapses on Spider (no joins, no grouping, no
//! nesting in the sketch grammar) — the trade-off the survey's Table 2
//! shows between the WikiSQL EX column and the Spider EM column.
//!
//! `contextual_backoff` models the PLM boost (SQLova/X-SQL vs. SQLNet):
//! when the learned alignment has never seen a word, the parser backs off
//! to subword-similarity linking, the way BERT's pretrained representations
//! generalize past the supervised vocabulary.

use crate::analysis::{analyze, CmpKind};
use crate::linking::{LinkConfig, Linker};
use nli_core::{
    ColumnRef, DataType, Database, NlQuestion, NliError, Result, SemanticParser, Value,
};
use nli_lm::{sketch_of, AlignmentModel, SketchClassifier, TrainingExample};
use nli_sql::{AggFunc, BinOp, ColName, Expr, Query, Select, SelectItem};

/// Skeleton-based Text-to-SQL parser. Train before use.
pub struct SkeletonParser {
    name: String,
    /// Aggregate-slot classifier (COUNT/SUM/AVG/MIN/MAX/NONE).
    agg_head: SketchClassifier,
    alignment: AlignmentModel,
    /// Subword-similarity fallback for out-of-vocabulary words (the
    /// "pretrained encoder" effect).
    contextual_backoff: bool,
    backoff_linker: Linker,
}

impl SkeletonParser {
    /// An untrained parser. `contextual_backoff = false` gives the
    /// SQLNet-class variant; `true` the SQLova-class variant.
    pub fn new(contextual_backoff: bool) -> SkeletonParser {
        SkeletonParser {
            name: if contextual_backoff {
                "skeleton+plm".to_string()
            } else {
                "skeleton".to_string()
            },
            agg_head: SketchClassifier::new(),
            alignment: AlignmentModel::new(),
            contextual_backoff,
            backoff_linker: Linker::new(LinkConfig {
                lexical: true,
                synonyms: false,
                embeddings: true,
                values: true,
                alignment: None,
                threshold: 0.58,
            }),
        }
    }

    /// Supervised training on (question, SQL) pairs. The aggregate slot is
    /// trained as its own head (SQLNet's decomposition), which keeps the
    /// label space small and sample-efficient.
    pub fn train(&mut self, examples: &[TrainingExample]) {
        self.agg_head.train_with(examples, |q| {
            q.select
                .items
                .iter()
                .find_map(|i| match &i.expr {
                    nli_sql::Expr::Agg { func, .. } => Some(func.name().to_string()),
                    _ => None,
                })
                .unwrap_or_else(|| "NONE".to_string())
        });
        self.alignment.train(examples);
    }

    pub fn is_trained(&self) -> bool {
        self.agg_head.class_count() > 0
    }

    /// Ground a phrase to a column using learned statistics first, then
    /// (optionally) lexical backoff.
    fn ground(&self, phrase: &str, db: &Database, table: usize) -> Option<ColumnRef> {
        let cols = &db.schema.tables[table].columns;
        // learned alignment first, with a small column-name attention term
        // to break co-occurrence ties (SQLNet's column attention encodes
        // names too)
        let mut best: Option<(f64, usize)> = None;
        for (ci, c) in cols.iter().enumerate() {
            let mut learned: f64 = 0.0;
            for w in phrase.split_whitespace() {
                learned = learned.max(self.alignment.column_score(w, &c.name));
            }
            if learned <= 0.05 {
                continue;
            }
            let lexical = self
                .backoff_linker
                .phrase_score(phrase, &c.display, &c.name);
            let s = learned + 0.1 * lexical;
            if best.is_none_or(|(bs, _)| s > bs) {
                best = Some((s, ci));
            }
        }
        if let Some((_, ci)) = best {
            return Some(ColumnRef { table, column: ci });
        }
        // out-of-vocabulary phrase: only the contextual variant has a
        // pretrained prior to fall back on (the SQLova-vs-SQLNet gap)
        if self.contextual_backoff {
            let mut best: Option<(f64, usize)> = None;
            for (ci, c) in cols.iter().enumerate() {
                let s = self
                    .backoff_linker
                    .phrase_score(phrase, &c.display, &c.name);
                if s >= self.backoff_linker.config.threshold && best.is_none_or(|(bs, _)| s > bs) {
                    best = Some((s, ci));
                }
            }
            if let Some((_, ci)) = best {
                return Some(ColumnRef { table, column: ci });
            }
        }
        None
    }
}

impl SemanticParser for SkeletonParser {
    type Expr = Query;

    fn parse(&self, question: &NlQuestion, db: &Database) -> Result<Query> {
        if !self.is_trained() {
            return Err(NliError::Model("skeleton parser is untrained".into()));
        }
        // main table: WikiSQL databases are single-table; otherwise pick the
        // best learned/lexical table mention.
        let table = if db.schema.tables.len() == 1 {
            0
        } else {
            let a = analyze(&question.text);
            a.table_phrase
                .as_deref()
                .and_then(|p| {
                    let mut best: Option<(f64, usize)> = None;
                    for ti in 0..db.schema.tables.len() {
                        let t = &db.schema.tables[ti];
                        let mut s = self.backoff_linker.phrase_score(p, &t.display, &t.name);
                        for w in p.split_whitespace() {
                            s = s.max(self.alignment.table_score(w, &t.name));
                        }
                        if best.is_none_or(|(bs, _)| s > bs) {
                            best = Some((s, ti));
                        }
                    }
                    best.map(|(_, ti)| ti)
                })
                .unwrap_or(0)
        };
        let table_name = db.schema.tables[table].name.clone();

        // the aggregate head predicts the intended SELECT shape
        let agg_name = self
            .agg_head
            .predict(&question.text)
            .ok_or_else(|| NliError::Model("sketch prediction failed".into()))?;

        let a = analyze(&question.text);

        let mut select = Select::simple(&table_name, Vec::new());

        // SELECT clause from the sketch's aggregate slot
        let agg = match agg_name.as_str() {
            "COUNT" => Some((AggFunc::Count, None)),
            "SUM" | "AVG" | "MAX" | "MIN" => {
                let func = match agg_name.as_str() {
                    "SUM" => AggFunc::Sum,
                    "AVG" => AggFunc::Avg,
                    "MAX" => AggFunc::Max,
                    _ => AggFunc::Min,
                };
                // argument slot: the analyzer's phrase, else the first
                // numeric column
                let arg = a
                    .agg
                    .as_ref()
                    .and_then(|s| s.arg_phrase.as_deref())
                    .and_then(|p| self.ground(p, db, table))
                    .or_else(|| {
                        db.schema.tables[table]
                            .columns
                            .iter()
                            .position(|c| c.dtype.is_numeric() && !c.primary_key)
                            .map(|ci| ColumnRef { table, column: ci })
                    });
                Some((func, arg))
            }
            _ => None,
        };
        match agg {
            Some((AggFunc::Count, _)) => {
                select.items = vec![SelectItem::plain(Expr::count_star())];
            }
            Some((f, Some(argc))) => {
                select.items = vec![SelectItem::plain(Expr::agg(
                    f,
                    Expr::Column(ColName::new(&db.schema.column(argc).name)),
                ))];
            }
            Some((f, None)) => {
                let _ = f;
                select.items = vec![SelectItem::plain(Expr::count_star())];
            }
            None => {
                let mut cols: Vec<ColumnRef> = a
                    .projections
                    .iter()
                    .filter_map(|p| self.ground(p, db, table))
                    .collect();
                if cols.is_empty() {
                    // default to the first text column
                    let ci = db.schema.tables[table]
                        .columns
                        .iter()
                        .position(|c| c.dtype == DataType::Text)
                        .unwrap_or(0);
                    cols.push(ColumnRef { table, column: ci });
                }
                select.items = cols
                    .into_iter()
                    .map(|r| {
                        SelectItem::plain(Expr::Column(ColName::new(&db.schema.column(r).name)))
                    })
                    .collect();
            }
        }

        // WHERE slots: fill every condition the analyzer surfaced (the
        // condition-count head is implicit in the literal detection).
        let mut exprs = Vec::new();
        for c in a.conds.iter() {
            if matches!(c.kind, CmpKind::KnowledgeHigh | CmpKind::KnowledgeLow) {
                continue;
            }
            let Some(col) = self.ground(&c.col_phrase, db, table) else {
                continue;
            };
            let lhs = Expr::Column(ColName::new(&db.schema.column(col).name));
            let expr = match (&c.kind, &c.value) {
                (CmpKind::Op(op), Some(v)) => {
                    let v = coerce(db, col, v.clone());
                    Expr::binary(lhs, *op, Expr::Literal(v))
                }
                (CmpKind::Between, Some(v)) => Expr::Between {
                    expr: Box::new(lhs),
                    low: Box::new(Expr::Literal(coerce(db, col, v.clone()))),
                    high: Box::new(Expr::Literal(coerce(
                        db,
                        col,
                        c.value2.clone().unwrap_or(Value::Null),
                    ))),
                    negated: false,
                },
                (CmpKind::Contains, Some(v)) => Expr::Like {
                    expr: Box::new(lhs),
                    pattern: format!("%{}%", v.canonical()),
                    negated: false,
                },
                _ => continue,
            };
            exprs.push(expr);
        }
        select.where_clause = exprs
            .into_iter()
            .reduce(|x, y| Expr::binary(x, BinOp::And, y));

        // the skeleton grammar has no GROUP BY / ORDER BY / JOIN / nesting.
        Ok(Query::single(select))
    }

    fn name(&self) -> &str {
        &self.name
    }
}

fn coerce(db: &Database, col: ColumnRef, v: Value) -> Value {
    match (db.schema.column(col).dtype, &v) {
        (DataType::Float, Value::Int(i)) => Value::Float(*i as f64),
        (DataType::Int, Value::Float(f)) if f.fract() == 0.0 => Value::Int(*f as i64),
        _ => v,
    }
}

/// Convenience: build training examples from (question, gold SQL) pairs.
pub fn training_examples<'a>(
    pairs: impl IntoIterator<Item = (&'a str, &'a Query)>,
) -> Vec<TrainingExample> {
    pairs
        .into_iter()
        .map(|(q, sql)| TrainingExample {
            question: q.to_string(),
            sql: sql.clone(),
        })
        .collect()
}

/// The sketch label of a gold query (re-exported for evaluation reports).
pub fn gold_sketch(q: &Query) -> String {
    sketch_of(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nli_core::{Column, Schema, Table};
    use nli_sql::parse_query;

    fn db() -> Database {
        let schema = Schema::new(
            "d",
            vec![Table::new(
                "singer",
                vec![
                    Column::new("id", DataType::Int).primary(),
                    Column::new("name", DataType::Text),
                    Column::new("age", DataType::Int),
                    Column::new("country", DataType::Text),
                ],
            )],
        );
        let mut d = Database::empty(schema);
        d.insert_all(
            "singer",
            vec![
                vec![1.into(), "Rosa Chen".into(), 30.into(), "France".into()],
                vec![2.into(), "Omar Quinn".into(), 45.into(), "Japan".into()],
            ],
        )
        .unwrap();
        d
    }

    fn trained(backoff: bool) -> SkeletonParser {
        let mut p = SkeletonParser::new(backoff);
        let corpus = [
            ("How many singers are there?", "SELECT COUNT(*) FROM singer"),
            (
                "Count the singers with age greater than 20.",
                "SELECT COUNT(*) FROM singer WHERE age > 20",
            ),
            (
                "What is the average age of singers?",
                "SELECT AVG(age) FROM singer",
            ),
            ("List the name of singers.", "SELECT name FROM singer"),
            (
                "List the name of singers whose country is 'France'.",
                "SELECT name FROM singer WHERE country = 'France'",
            ),
        ];
        let examples: Vec<TrainingExample> = corpus
            .iter()
            .map(|(q, s)| TrainingExample {
                question: q.to_string(),
                sql: parse_query(s).unwrap(),
            })
            .collect();
        p.train(&examples);
        p
    }

    #[test]
    fn untrained_parser_refuses() {
        let p = SkeletonParser::new(true);
        assert!(p
            .parse(&NlQuestion::new("How many singers are there?"), &db())
            .is_err());
    }

    #[test]
    fn predicts_trained_shapes() {
        let p = trained(true);
        let q = NlQuestion::new("How many singers are there?");
        assert_eq!(
            p.parse(&q, &db()).unwrap().to_string(),
            "SELECT COUNT(*) FROM singer"
        );
        let q = NlQuestion::new("What is the average age of singers?");
        assert_eq!(
            p.parse(&q, &db()).unwrap().to_string(),
            "SELECT AVG(age) FROM singer"
        );
    }

    #[test]
    fn fills_condition_slots() {
        let p = trained(true);
        let q = NlQuestion::new("Count the singers with age greater than 40.");
        assert_eq!(
            p.parse(&q, &db()).unwrap().to_string(),
            "SELECT COUNT(*) FROM singer WHERE age > 40"
        );
    }

    #[test]
    fn backoff_matters_for_unseen_columns() {
        // the training corpus never mentions "country" textually aligned to
        // an unseen phrasing; with backoff the lexical match still lands.
        let with = trained(true);
        let without = trained(false);
        let q = NlQuestion::new("List the name of singers whose country is 'Japan'.");
        let a = with.parse(&q, &db()).unwrap().to_string();
        assert!(a.contains("country = 'Japan'"), "{a}");
        let _ = without; // both may succeed here; the corpus-level gap is
                         // measured in the Table 2 harness
    }

    #[test]
    fn never_emits_joins_or_groups() {
        let p = trained(true);
        let q = NlQuestion::new(
            "For each country, how many singers are there, sorted by the result in descending order?",
        );
        let sql = p.parse(&q, &db()).unwrap();
        assert!(sql.select.group_by.is_empty());
        assert_eq!(sql.select.from.len(), 1);
        assert!(sql.select.order_by.is_empty());
    }
}
