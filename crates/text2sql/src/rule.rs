//! The traditional-stage rule-based parser (NaLIR/PRECISE-class).
//!
//! Architecturally this is the grammar parser locked to its traditional
//! configuration: lexical-only schema linking (exact/stem/edit-distance, no
//! synonyms, no embeddings, no learned statistics) and no foreign-key join
//! inference — the parser reasons about one table at a time, which is
//! exactly the "one-to-one correspondence" assumption the survey credits
//! to PRECISE and the reason these systems "struggle with many variations
//! in natural language".
//!
//! Like NaLIR, it can also *rank* candidate interpretations and expose the
//! runner-ups for user interaction ([`RuleBasedParser::candidates`]).

use crate::grammar::{GrammarConfig, GrammarParser};
use nli_core::{Database, NlQuestion, Result, SemanticParser};
use nli_sql::Query;

/// Rule-based Text-to-SQL parser.
pub struct RuleBasedParser {
    inner: GrammarParser,
}

impl RuleBasedParser {
    pub fn new() -> RuleBasedParser {
        RuleBasedParser {
            inner: GrammarParser::new(GrammarConfig::traditional().named("rule-based")),
        }
    }

    /// Ranked candidate interpretations (NaLIR-style user disambiguation).
    pub fn candidates(&self, question: &NlQuestion, db: &Database, k: usize) -> Vec<Query> {
        self.inner.parse_candidates(question, db, k)
    }
}

impl Default for RuleBasedParser {
    fn default() -> Self {
        RuleBasedParser::new()
    }
}

impl SemanticParser for RuleBasedParser {
    type Expr = Query;

    fn parse(&self, question: &NlQuestion, db: &Database) -> Result<Query> {
        self.inner.parse(question, db)
    }

    fn name(&self) -> &str {
        "rule-based"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nli_core::{Column, DataType, Schema, Table};

    fn db() -> Database {
        let schema = Schema::new(
            "d",
            vec![Table::new(
                "singer",
                vec![
                    Column::new("id", DataType::Int).primary(),
                    Column::new("name", DataType::Text),
                    Column::new("age", DataType::Int),
                ],
            )],
        );
        let mut d = Database::empty(schema);
        d.insert_all(
            "singer",
            vec![
                vec![1.into(), "Rosa Chen".into(), 30.into()],
                vec![2.into(), "Omar Quinn".into(), 45.into()],
            ],
        )
        .unwrap();
        d
    }

    #[test]
    fn handles_exact_phrasing() {
        let p = RuleBasedParser::new();
        let q = NlQuestion::new("How many singers with age greater than 30 are there?");
        assert_eq!(
            p.parse(&q, &db()).unwrap().to_string(),
            "SELECT COUNT(*) FROM singer WHERE age > 30"
        );
    }

    #[test]
    fn fails_on_synonym_phrasing() {
        // "vocalists" is a synonym of "singer" the rule-based linker lacks
        let p = RuleBasedParser::new();
        let q = NlQuestion::new("How many vocalists are there?");
        match p.parse(&q, &db()) {
            Err(_) => {}
            Ok(sql) => {
                // if it guesses a table via fallback linking it must not be
                // because it understood the synonym
                assert!(sql.to_string().contains("singer"));
            }
        }
    }

    #[test]
    fn produces_ranked_candidates() {
        let p = RuleBasedParser::new();
        let q = NlQuestion::new("List the name of singers with age above 40.");
        let cands = p.candidates(&q, &db(), 3);
        assert!(!cands.is_empty());
        assert_eq!(
            cands[0].to_string(),
            "SELECT name FROM singer WHERE age > 40"
        );
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(RuleBasedParser::new().name(), "rule-based");
    }
}
