//! Grammar-constrained semantic parsing (the neural-stage workhorse).
//!
//! The parser grounds the analyzer's sketches against the schema through a
//! configurable [`Linker`] and *derives the SQL through the grammar*: every
//! output is a well-formed AST by construction — the property the survey
//! attributes to grammar-based decoders (Seq2Tree/IRNet) and constrained
//! decoding (PICARD). Foreign-key join inference plays the role of
//! graph-based schema encoding (RAT-SQL/LGESQL): when a grounded column
//! lives on another table, the parser walks the FK graph to justify a join.
//!
//! [`GrammarConfig`] grades the parser across the survey's stages:
//!
//! * [`GrammarConfig::traditional`] — lexical linking only, no join
//!   inference (NaLIR-class; used by [`crate::rule::RuleBasedParser`]);
//! * [`GrammarConfig::neural`] — embedding linking + join inference
//!   (+ a trained alignment model = the learned encoder);
//! * [`GrammarConfig::llm_reasoner`] — adds synonym world knowledge and
//!   BIRD-style evidence resolution (the internal reasoner the simulated
//!   LLM corrupts).

use crate::analysis::{analyze, CmpKind, CondSketch, QuestionAnalysis};
use crate::evidence::parse_evidence;
use crate::linking::{LinkConfig, Linker};
use nli_core::{
    ColumnRef, DataType, Database, NlQuestion, NliError, Result, SemanticParser, Value,
};
use nli_lm::AlignmentModel;
use nli_sql::{
    AggFunc, BinOp, ColName, Expr, JoinCond, OrderItem, Query, Select, SelectItem, TableRef,
};

/// Parser capabilities and linking configuration.
#[derive(Debug, Clone)]
pub struct GrammarConfig {
    pub name: String,
    pub link: LinkConfig,
    /// Infer joins over the FK graph when a column lives elsewhere.
    pub enable_joins: bool,
    /// Emit `IN (SELECT ...)` for "that have ..." questions.
    pub enable_nested: bool,
    /// Emit UNION/INTERSECT/EXCEPT.
    pub enable_compound: bool,
    /// Resolve knowledge concepts through attached evidence.
    pub use_evidence: bool,
}

impl GrammarConfig {
    /// Traditional stage (rule-based linking, single-table reasoning).
    pub fn traditional() -> GrammarConfig {
        GrammarConfig {
            name: "rule-based".into(),
            link: LinkConfig::lexical_only(),
            enable_joins: false,
            enable_nested: true,
            enable_compound: false,
            use_evidence: false,
        }
    }

    /// Neural stage (embedding linking, joins, full grammar).
    pub fn neural() -> GrammarConfig {
        GrammarConfig {
            name: "grammar-neural".into(),
            link: LinkConfig {
                lexical: true,
                synonyms: false,
                embeddings: true,
                values: true,
                alignment: None,
                threshold: 0.58,
            },
            enable_joins: true,
            enable_nested: true,
            enable_compound: true,
            use_evidence: false,
        }
    }

    /// The LLM's internal reasoner: everything on.
    pub fn llm_reasoner() -> GrammarConfig {
        GrammarConfig {
            name: "llm-reasoner".into(),
            link: LinkConfig::world_knowledge(),
            enable_joins: true,
            enable_nested: true,
            enable_compound: true,
            use_evidence: true,
        }
    }

    pub fn with_alignment(mut self, alignment: AlignmentModel) -> GrammarConfig {
        self.link.alignment = Some(alignment);
        self
    }

    pub fn named(mut self, name: &str) -> GrammarConfig {
        self.name = name.into();
        self
    }
}

/// The grammar-constrained parser.
pub struct GrammarParser {
    cfg: GrammarConfig,
    linker: Linker,
}

/// A grounded condition, ready to lower.
#[derive(Debug, Clone)]
struct GroundCond {
    col: ColumnRef,
    kind: CmpKind,
    value: Option<Value>,
    value2: Option<Value>,
}

impl GrammarParser {
    pub fn new(cfg: GrammarConfig) -> GrammarParser {
        let linker = Linker::new(cfg.link.clone());
        GrammarParser { cfg, linker }
    }

    pub fn config(&self) -> &GrammarConfig {
        &self.cfg
    }

    // ---- grounding -------------------------------------------------------

    /// Score a phrase against a table's surface forms.
    fn table_score(&self, phrase: &str, db: &Database, ti: usize) -> f64 {
        let t = &db.schema.tables[ti];
        let mut best =
            self.linker
                .phrase_score(phrase, &t.display, &t.name)
                .max(
                    self.linker
                        .phrase_score(phrase, &t.name.replace('_', " "), &t.name),
                );
        if let Some(al) = &self.linker.config.alignment {
            for w in phrase.split_whitespace() {
                let s = al.table_score(w, &t.name);
                if s > 0.0 {
                    best = best.max(0.5 + 0.5 * s);
                }
            }
        }
        best
    }

    /// Ground a table phrase; `None` below threshold.
    pub fn ground_table(&self, phrase: &str, db: &Database) -> Option<usize> {
        let mut best: Option<(f64, usize)> = None;
        for ti in 0..db.schema.tables.len() {
            let s = self.table_score(phrase, db, ti);
            if s >= self.linker.config.threshold && best.is_none_or(|(bs, _)| s > bs) {
                best = Some((s, ti));
            }
        }
        best.map(|(_, ti)| ti)
    }

    /// Ranked column groundings for a phrase.
    ///
    /// Besides whole-phrase matching, a two-part interpretation
    /// `"<table> <column>"` is scored so join questions like "store city"
    /// resolve to `stores.city`. A small bonus prefers `main`-table columns
    /// on ties.
    fn ground_column_ranked(
        &self,
        phrase: &str,
        db: &Database,
        scope: &[usize],
        main: usize,
    ) -> Vec<(ColumnRef, f64)> {
        let mut scored: Vec<(ColumnRef, f64)> = Vec::new();
        for &ti in scope {
            for (ci, c) in db.schema.tables[ti].columns.iter().enumerate() {
                let r = ColumnRef {
                    table: ti,
                    column: ci,
                };
                let mut s = self.linker.phrase_score(phrase, &c.display, &c.name);
                if let Some(al) = &self.linker.config.alignment {
                    let learned = al.column_score(phrase, &c.name);
                    if learned > 0.0 {
                        s = s.max(0.5 + 0.5 * learned);
                    }
                }
                // split interpretation: "<table words> <column words>"
                let words: Vec<&str> = phrase.split_whitespace().collect();
                if words.len() >= 2 {
                    for split in 1..words.len() {
                        let t_part = words[..split].join(" ");
                        let c_part = words[split..].join(" ");
                        let ts = self.table_score(&t_part, db, ti);
                        let cs = self.linker.phrase_score(&c_part, &c.display, &c.name);
                        if ts >= self.linker.config.threshold && cs >= self.linker.config.threshold
                        {
                            s = s.max(0.5 * ts + 0.5 * cs + 0.02);
                        }
                    }
                }
                if ti == main {
                    s += 0.03;
                }
                if s >= self.linker.config.threshold {
                    scored.push((r, s));
                }
            }
        }
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored
    }

    /// Ground a column phrase over `scope` (public for the vis parsers).
    pub fn ground_column(
        &self,
        phrase: &str,
        db: &Database,
        scope: &[usize],
        main: usize,
        alt: bool,
    ) -> Option<ColumnRef> {
        let ranked = self.ground_column_ranked(phrase, db, scope, main);
        if alt && ranked.len() > 1 {
            Some(ranked[1].0)
        } else {
            ranked.first().map(|(r, _)| *r)
        }
    }

    /// Default projection column of a table: first text column, else first
    /// non-PK column, else the PK.
    pub fn default_column(&self, db: &Database, ti: usize) -> ColumnRef {
        let t = &db.schema.tables[ti];
        for (ci, c) in t.columns.iter().enumerate() {
            if c.dtype == DataType::Text {
                return ColumnRef {
                    table: ti,
                    column: ci,
                };
            }
        }
        for (ci, c) in t.columns.iter().enumerate() {
            if !c.primary_key {
                return ColumnRef {
                    table: ti,
                    column: ci,
                };
            }
        }
        ColumnRef {
            table: ti,
            column: 0,
        }
    }

    /// A numeric column of `ti` for superlatives.
    fn ground_numeric(&self, phrase: &str, db: &Database, ti: usize) -> Option<ColumnRef> {
        self.ground_column_ranked(phrase, db, &[ti], ti)
            .into_iter()
            .map(|(r, _)| r)
            .find(|r| db.schema.column(*r).dtype.is_numeric())
    }

    // ---- lowering ---------------------------------------------------------

    fn col_expr(&self, db: &Database, r: ColumnRef, qualify: bool) -> Expr {
        if qualify {
            Expr::Column(ColName::qualified(
                &db.schema.tables[r.table].name,
                &db.schema.column(r).name,
            ))
        } else {
            Expr::Column(ColName::new(&db.schema.column(r).name))
        }
    }

    fn build_cond(&self, db: &Database, c: &GroundCond, qualify: bool) -> Option<Expr> {
        let lhs = self.col_expr(db, c.col, qualify);
        Some(match &c.kind {
            CmpKind::Op(op) => {
                let v = self.fix_value(db, c.col, c.value.clone()?);
                Expr::binary(lhs, *op, Expr::Literal(v))
            }
            CmpKind::Between => Expr::Between {
                expr: Box::new(lhs),
                low: Box::new(Expr::Literal(self.fix_value(db, c.col, c.value.clone()?))),
                high: Box::new(Expr::Literal(self.fix_value(db, c.col, c.value2.clone()?))),
                negated: false,
            },
            CmpKind::Contains => Expr::Like {
                expr: Box::new(lhs),
                pattern: format!("%{}%", c.value.clone()?.canonical()),
                negated: false,
            },
            // unresolved knowledge concepts have no literal to compare with
            CmpKind::KnowledgeHigh | CmpKind::KnowledgeLow => return None,
        })
    }

    /// Coerce a literal to the column's type (ints become floats for float
    /// columns etc.), mirroring what value-aware decoders do.
    fn fix_value(&self, db: &Database, col: ColumnRef, v: Value) -> Value {
        match (db.schema.column(col).dtype, &v) {
            (DataType::Float, Value::Int(i)) => Value::Float(*i as f64),
            (DataType::Int, Value::Float(f)) if f.fract() == 0.0 => Value::Int(*f as i64),
            _ => v,
        }
    }

    /// Resolve knowledge-concept conditions against attached evidence.
    fn resolve_knowledge(&self, conds: &mut [CondSketch], question: &NlQuestion) {
        if !self.cfg.use_evidence {
            return;
        }
        let Some(ev) = &question.evidence else { return };
        let rules = parse_evidence(ev);
        for c in conds.iter_mut() {
            let want_high = match c.kind {
                CmpKind::KnowledgeHigh => true,
                CmpKind::KnowledgeLow => false,
                _ => continue,
            };
            if let Some(rule) = rules
                .iter()
                .find(|r| r.high == want_high && r.col_phrase == c.col_phrase)
                .or_else(|| rules.iter().find(|r| r.high == want_high))
            {
                c.kind = CmpKind::Op(rule.op);
                c.value = Some(rule.value.clone());
            }
        }
    }

    /// Full parse with an optional alternative grounding for one condition
    /// slot (used by candidate generation).
    fn parse_with(
        &self,
        question: &NlQuestion,
        db: &Database,
        alt_slot: Option<usize>,
    ) -> Result<Query> {
        let mut a = analyze(&question.text);
        self.resolve_knowledge(&mut a.conds, question);

        // ---- main table ----------------------------------------------------
        let main = a
            .table_phrase
            .as_deref()
            .and_then(|p| self.ground_table(p, db))
            .or_else(|| self.linker.link(&question.text, db).best_table())
            .ok_or_else(|| NliError::Parse("could not identify a table".into()))?;

        // ---- nested ---------------------------------------------------------
        if let (Some(n), true) = (&a.nested, self.cfg.enable_nested) {
            if let Some(q) = self.build_nested(&a, n.negated, &n.child_phrase, main, db) {
                return Ok(q);
            }
        }

        // ---- compound --------------------------------------------------------
        if let (Some(op), true) = (a.compound, self.cfg.enable_compound) {
            if a.conds.len() >= 2 {
                if let Some(q) = self.build_compound(&a, op, main, db) {
                    return Ok(q);
                }
            }
        }

        // ---- scope & shared grounding -----------------------------------------
        let scope_all: Vec<usize> = if self.cfg.enable_joins {
            (0..db.schema.tables.len()).collect()
        } else {
            vec![main]
        };

        // ground conditions
        let mut gconds: Vec<GroundCond> = Vec::new();
        for (slot, c) in a.conds.iter().enumerate() {
            if matches!(c.kind, CmpKind::KnowledgeHigh | CmpKind::KnowledgeLow) {
                continue; // unresolved concept: drop (a genuine failure mode)
            }
            let alt = alt_slot == Some(slot);
            if let Some(col) = self.ground_column(&c.col_phrase, db, &scope_all, main, alt) {
                gconds.push(GroundCond {
                    col,
                    kind: c.kind.clone(),
                    value: c.value.clone(),
                    value2: c.value2.clone(),
                });
            }
        }

        // superlatives (scalar subqueries over the main table)
        let superlatives: Vec<(AggFunc, ColumnRef)> = a
            .superlatives
            .iter()
            .filter_map(|(f, p)| self.ground_numeric(p, db, main).map(|r| (*f, r)))
            .collect();

        // group key
        let group_key = a
            .group_phrase
            .as_deref()
            .and_then(|p| self.ground_column(p, db, &scope_all, main, false));

        // aggregate argument
        let agg = a.agg.as_ref().map(|s| {
            let arg = s
                .arg_phrase
                .as_deref()
                .and_then(|p| self.ground_column(p, db, &scope_all, main, false));
            (s.func, arg)
        });

        // projections
        let mut proj_cols: Vec<ColumnRef> = a
            .projections
            .iter()
            .filter_map(|p| self.ground_column(p, db, &scope_all, main, false))
            .collect();

        // order
        let order = a.order.as_ref().map(|o| {
            let col = if o.phrase == "the result" || o.phrase.is_empty() {
                None
            } else {
                self.ground_column(&o.phrase, db, &scope_all, main, false)
            };
            (col, o.desc, o.limit)
        });

        // ---- join inference -----------------------------------------------------
        let mut used: Vec<ColumnRef> = gconds.iter().map(|c| c.col).collect();
        used.extend(proj_cols.iter().copied());
        if let Some((_, Some(arg))) = &agg {
            used.push(*arg);
        }
        if let Some(k) = group_key {
            used.push(k);
        }
        if let Some((Some(c), _, _)) = &order {
            used.push(*c);
        }
        let mut join: Option<(usize, ColumnRef, ColumnRef)> = None; // (parent, fk, pk)
        if self.cfg.enable_joins {
            for r in &used {
                if r.table != main {
                    if let Some(fk) = db
                        .schema
                        .foreign_keys
                        .iter()
                        .find(|fk| fk.from.table == main && fk.to.table == r.table)
                    {
                        join = Some((r.table, fk.from, fk.to));
                        break;
                    }
                }
            }
        }
        // columns on unreachable tables get remapped into the main table
        let parent = join.map(|(p, _, _)| p);
        let remap = |r: ColumnRef, this: &GrammarParser| -> ColumnRef {
            if r.table == main || Some(r.table) == parent {
                r
            } else {
                this.default_column(db, main)
            }
        };
        for c in gconds.iter_mut() {
            c.col = remap(c.col, self);
        }
        for p in proj_cols.iter_mut() {
            *p = remap(*p, self);
        }
        let agg = agg.map(|(f, arg)| (f, arg.map(|r| remap(r, self))));
        let group_key = group_key.map(|r| remap(r, self));
        let order = order.map(|(c, d, l)| (c.map(|r| remap(r, self)), d, l));

        let qualify = join.is_some();

        // ---- assemble the SELECT ---------------------------------------------
        let main_name = db.schema.tables[main].name.clone();
        let mut select = Select::simple(&main_name, Vec::new());
        if let Some((p, fk, pk)) = join {
            select.from.push(TableRef {
                name: db.schema.tables[p].name.clone(),
            });
            select.joins.push(JoinCond {
                left: ColName::qualified(
                    &db.schema.tables[fk.table].name,
                    &db.schema.column(fk).name,
                ),
                right: ColName::qualified(
                    &db.schema.tables[pk.table].name,
                    &db.schema.column(pk).name,
                ),
            });
        }

        let agg_expr = |f: AggFunc, arg: &Option<ColumnRef>| match arg {
            Some(r) => Expr::agg(f, self.col_expr(db, *r, qualify)),
            None => Expr::count_star(),
        };

        if let Some(key) = group_key {
            // GROUP BY shape
            let (f, arg) = agg.unwrap_or((AggFunc::Count, None));
            let key_expr = self.col_expr(db, key, qualify);
            select.items = vec![
                SelectItem::plain(key_expr.clone()),
                SelectItem::plain(agg_expr(f, &arg)),
            ];
            select.group_by = vec![key_expr];
            if let Some(n) = a.having_min {
                select.having = Some(Expr::binary(Expr::count_star(), BinOp::Gt, Expr::lit(n)));
            }
            if let Some((col, desc, limit)) = &order {
                let expr = match col {
                    Some(r) => self.col_expr(db, *r, qualify),
                    None => agg_expr(f, &arg),
                };
                select.order_by = vec![OrderItem { expr, desc: *desc }];
                select.limit = *limit;
            }
        } else if let Some((f, arg)) = agg {
            select.items = vec![SelectItem::plain(agg_expr(f, &arg))];
        } else {
            if proj_cols.is_empty() {
                proj_cols.push(self.default_column(db, main));
            }
            select.items = proj_cols
                .iter()
                .map(|r| SelectItem::plain(self.col_expr(db, *r, qualify)))
                .collect();
            select.distinct = a.distinct;
            if let Some((col, desc, limit)) = &order {
                let expr = match col {
                    Some(r) => self.col_expr(db, *r, qualify),
                    None => Expr::count_star(),
                };
                select.order_by = vec![OrderItem { expr, desc: *desc }];
                select.limit = *limit;
            }
        }

        // WHERE
        let mut exprs: Vec<Expr> = gconds
            .iter()
            .filter_map(|c| self.build_cond(db, c, qualify))
            .collect();
        for (f, col) in &superlatives {
            let inner = Query::single(Select::simple(
                &main_name,
                vec![SelectItem::plain(Expr::agg(
                    *f,
                    Expr::Column(ColName::new(&db.schema.column(*col).name)),
                ))],
            ));
            exprs.push(Expr::binary(
                self.col_expr(db, *col, qualify),
                BinOp::Eq,
                Expr::ScalarSubquery(Box::new(inner)),
            ));
        }
        select.where_clause = exprs
            .into_iter()
            .reduce(|a, b| Expr::binary(a, BinOp::And, b));

        Ok(Query::single(select))
    }

    fn build_nested(
        &self,
        a: &QuestionAnalysis,
        negated: bool,
        child_phrase: &str,
        outer: usize,
        db: &Database,
    ) -> Option<Query> {
        let child = self.ground_table(child_phrase, db)?;
        let fk = db
            .schema
            .foreign_keys
            .iter()
            .find(|fk| fk.from.table == child && fk.to.table == outer)?;
        let child_name = &db.schema.tables[child].name;
        let mut inner = Select::simple(
            child_name,
            vec![SelectItem::plain(Expr::Column(ColName::new(
                &db.schema.column(fk.from).name,
            )))],
        );
        // conditions grounded to the child table go inside
        let inner_conds: Vec<Expr> = a
            .conds
            .iter()
            .filter_map(|c| {
                let col = self.ground_column(&c.col_phrase, db, &[child], child, false)?;
                self.build_cond(
                    db,
                    &GroundCond {
                        col,
                        kind: c.kind.clone(),
                        value: c.value.clone(),
                        value2: c.value2.clone(),
                    },
                    false,
                )
            })
            .collect();
        inner.where_clause = inner_conds
            .into_iter()
            .reduce(|x, y| Expr::binary(x, BinOp::And, y));

        let pk = db.schema.tables[outer].primary_key()?;
        let select_col = a
            .projections
            .first()
            .and_then(|p| self.ground_column(p, db, &[outer], outer, false))
            .unwrap_or_else(|| self.default_column(db, outer));
        let mut outer_sel = Select::simple(
            &db.schema.tables[outer].name,
            vec![SelectItem::plain(self.col_expr(db, select_col, false))],
        );
        outer_sel.where_clause = Some(Expr::InSubquery {
            expr: Box::new(Expr::Column(ColName::new(
                &db.schema.tables[outer].columns[pk].name,
            ))),
            query: Box::new(Query::single(inner)),
            negated,
        });
        Some(Query::single(outer_sel))
    }

    fn build_compound(
        &self,
        a: &QuestionAnalysis,
        op: nli_sql::SetOp,
        table: usize,
        db: &Database,
    ) -> Option<Query> {
        let col = a
            .projections
            .first()
            .and_then(|p| self.ground_column(p, db, &[table], table, false))
            .unwrap_or_else(|| self.default_column(db, table));
        let name = db.schema.tables[table].name.clone();
        let mk = |c: &CondSketch| -> Option<Query> {
            let gcol = self.ground_column(&c.col_phrase, db, &[table], table, false)?;
            let cond = self.build_cond(
                db,
                &GroundCond {
                    col: gcol,
                    kind: c.kind.clone(),
                    value: c.value.clone(),
                    value2: c.value2.clone(),
                },
                false,
            )?;
            let mut s = Select::simple(
                &name,
                vec![SelectItem::plain(self.col_expr(db, col, false))],
            );
            s.where_clause = Some(cond);
            Some(Query::single(s))
        };
        let mut left = mk(&a.conds[0])?;
        let right = mk(&a.conds[1])?;
        left.compound = Some((op, Box::new(right)));
        Some(left)
    }

    /// Ground a single condition sketch into an expression over `scope`
    /// tables (used by the conversational editor for follow-up turns).
    pub fn ground_condition(
        &self,
        sketch: &CondSketch,
        db: &Database,
        scope: &[usize],
        main: usize,
        qualify: bool,
    ) -> Option<Expr> {
        let col = self.ground_column(&sketch.col_phrase, db, scope, main, false)?;
        self.build_cond(
            db,
            &GroundCond {
                col,
                kind: sketch.kind.clone(),
                value: sketch.value.clone(),
                value2: sketch.value2.clone(),
            },
            qualify,
        )
    }

    /// Ground an ORDER BY phrase into a column expression over `scope`.
    pub fn ground_order_column(
        &self,
        phrase: &str,
        db: &Database,
        scope: &[usize],
        main: usize,
        qualify: bool,
    ) -> Option<Expr> {
        let col = self.ground_column(phrase, db, scope, main, false)?;
        Some(self.col_expr(db, col, qualify))
    }

    /// Candidate list for execution-guided decoding: the primary parse plus
    /// alternative groundings for each condition slot.
    pub fn parse_candidates(&self, question: &NlQuestion, db: &Database, k: usize) -> Vec<Query> {
        let mut out = Vec::new();
        if let Ok(q) = self.parse_with(question, db, None) {
            out.push(q);
        }
        let n_conds = analyze(&question.text).conds.len();
        for slot in 0..n_conds {
            if out.len() >= k {
                break;
            }
            if let Ok(q) = self.parse_with(question, db, Some(slot)) {
                if !out.contains(&q) {
                    out.push(q);
                }
            }
        }
        out
    }
}

impl SemanticParser for GrammarParser {
    type Expr = Query;

    fn parse(&self, question: &NlQuestion, db: &Database) -> Result<Query> {
        self.parse_with(question, db, None)
    }

    fn name(&self) -> &str {
        &self.cfg.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nli_core::{Column, Schema, Table};

    fn db() -> Database {
        let mut schema = Schema::new(
            "shop",
            vec![
                Table::new(
                    "products",
                    vec![
                        Column::new("id", DataType::Int).primary(),
                        Column::new("name", DataType::Text),
                        Column::new("category", DataType::Text),
                        Column::new("price", DataType::Float),
                    ],
                )
                .with_display("product"),
                Table::new(
                    "sales",
                    vec![
                        Column::new("id", DataType::Int).primary(),
                        Column::new("product_id", DataType::Int),
                        Column::new("amount", DataType::Float),
                    ],
                )
                .with_display("sale"),
            ],
        );
        schema.domain = "retail".into();
        schema
            .add_foreign_key("sales", "product_id", "products", "id")
            .unwrap();
        let mut d = Database::empty(schema);
        d.insert_all(
            "products",
            vec![
                vec![1.into(), "Widget".into(), "Tools".into(), 9.5.into()],
                vec![2.into(), "Gadget".into(), "Toys".into(), 19.0.into()],
            ],
        )
        .unwrap();
        d.insert_all(
            "sales",
            vec![
                vec![1.into(), 1.into(), 100.0.into()],
                vec![2.into(), 2.into(), 50.0.into()],
            ],
        )
        .unwrap();
        d
    }

    fn parse(p: &GrammarParser, q: &str) -> String {
        p.parse(&NlQuestion::new(q), &db()).unwrap().to_string()
    }

    #[test]
    fn count_question() {
        let p = GrammarParser::new(GrammarConfig::neural());
        assert_eq!(
            parse(&p, "How many products are there?"),
            "SELECT COUNT(*) FROM products"
        );
    }

    #[test]
    fn filtered_count_with_type_coercion() {
        let p = GrammarParser::new(GrammarConfig::neural());
        assert_eq!(
            parse(&p, "How many products with price greater than 5 are there?"),
            "SELECT COUNT(*) FROM products WHERE price > 5"
        );
    }

    #[test]
    fn projection_with_order_and_limit() {
        let p = GrammarParser::new(GrammarConfig::neural());
        assert_eq!(
            parse(
                &p,
                "List the name of products, sorted by price in descending order, and show only the top 3."
            ),
            "SELECT name FROM products ORDER BY price DESC LIMIT 3"
        );
    }

    #[test]
    fn group_by_question() {
        let p = GrammarParser::new(GrammarConfig::neural());
        assert_eq!(
            parse(
                &p,
                "For each category, what is the average price of products?"
            ),
            "SELECT category, AVG(price) FROM products GROUP BY category"
        );
    }

    #[test]
    fn group_with_having_and_order_by_result() {
        let p = GrammarParser::new(GrammarConfig::neural());
        assert_eq!(
            parse(
                &p,
                "For each category, how many products are there, keeping only groups with more than 1 products, sorted by the result in descending order?"
            ),
            "SELECT category, COUNT(*) FROM products GROUP BY category HAVING COUNT(*) > 1 ORDER BY COUNT(*) DESC"
        );
    }

    #[test]
    fn join_inference_from_parent_column_phrase() {
        let p = GrammarParser::new(GrammarConfig::neural());
        let sql = parse(
            &p,
            "For each product category, what is the total amount of sales?",
        );
        assert_eq!(
            sql,
            "SELECT products.category, SUM(sales.amount) FROM sales JOIN products \
             ON sales.product_id = products.id GROUP BY products.category"
        );
    }

    #[test]
    fn traditional_config_cannot_join() {
        let p = GrammarParser::new(GrammarConfig::traditional());
        let sql = parse(
            &p,
            "For each product category, what is the total amount of sales?",
        );
        assert!(!sql.contains("JOIN"), "{sql}");
    }

    #[test]
    fn nested_question() {
        let p = GrammarParser::new(GrammarConfig::neural());
        assert_eq!(
            parse(&p, "List the name of products that have no sale."),
            "SELECT name FROM products WHERE id NOT IN (SELECT product_id FROM sales)"
        );
    }

    #[test]
    fn nested_with_inner_condition() {
        let p = GrammarParser::new(GrammarConfig::neural());
        assert_eq!(
            parse(
                &p,
                "List the name of products that have at least one sale with amount above 60."
            ),
            "SELECT name FROM products WHERE id IN (SELECT product_id FROM sales WHERE amount > 60)"
        );
    }

    #[test]
    fn superlative_question() {
        let p = GrammarParser::new(GrammarConfig::neural());
        assert_eq!(
            parse(&p, "Show the name of products with the maximum price."),
            "SELECT name FROM products WHERE price = (SELECT MAX(price) FROM products)"
        );
    }

    #[test]
    fn compound_question() {
        let p = GrammarParser::new(GrammarConfig::neural());
        assert_eq!(
            parse(
                &p,
                "List the name of products whose category is 'Toys' but not whose category is 'Tools'."
            ),
            "SELECT name FROM products WHERE category = 'Toys' EXCEPT SELECT name FROM products WHERE category = 'Tools'"
        );
    }

    #[test]
    fn evidence_resolves_knowledge_conditions() {
        let reasoner = GrammarParser::new(GrammarConfig::llm_reasoner());
        let q = NlQuestion::new("How many products with a high price are there?")
            .with_evidence("a high price means price greater than 10");
        assert_eq!(
            reasoner.parse(&q, &db()).unwrap().to_string(),
            "SELECT COUNT(*) FROM products WHERE price > 10"
        );
        // without evidence the concept is dropped
        let no_ev = NlQuestion::new("How many products with a high price are there?");
        assert_eq!(
            reasoner.parse(&no_ev, &db()).unwrap().to_string(),
            "SELECT COUNT(*) FROM products"
        );
    }

    #[test]
    fn synonym_question_needs_world_knowledge() {
        let neural = GrammarParser::new(GrammarConfig::neural());
        let reasoner = GrammarParser::new(GrammarConfig::llm_reasoner());
        // "cost" is a synonym of "price"
        let q = "List the name of products with cost greater than 5.";
        let r = parse(&reasoner, q);
        assert!(r.contains("price > 5"), "{r}");
        let n = parse(&neural, q);
        assert!(!n.contains("price > 5"), "neural parser should miss: {n}");
    }

    #[test]
    fn unidentifiable_table_is_an_error() {
        let p = GrammarParser::new(GrammarConfig::neural());
        assert!(p
            .parse(
                &NlQuestion::new("colorless green ideas sleep furiously"),
                &db()
            )
            .is_err());
    }

    #[test]
    fn candidates_include_alternatives() {
        let p = GrammarParser::new(GrammarConfig::neural());
        let q = NlQuestion::new("List the name of products with price above 5.");
        let cands = p.parse_candidates(&q, &db(), 4);
        assert!(!cands.is_empty());
        assert!(cands.len() <= 4);
    }

    #[test]
    fn outputs_always_reparse() {
        let p = GrammarParser::new(GrammarConfig::neural());
        for q in [
            "How many sales are there?",
            "Show the name and price of products with price at least 5.",
            "List the different category of products.",
            "What is the maximum amount of sales?",
        ] {
            let sql = parse(&p, q);
            nli_sql::parse_query(&sql).unwrap_or_else(|e| panic!("{q}: {e}\n{sql}"));
        }
    }
}
