//! Conversational Text-to-SQL (EditSQL-class query editing).
//!
//! Multi-turn benchmarks (SParC/CoSQL) require tracking conversational
//! state: a follow-up like "Only those with age above 30." has no table,
//! no projection, no standalone meaning. The dialogue parser keeps the
//! previous turn's query and *edits* it — adding conjuncts, attaching
//! ordering, or switching the goal to a count — which is exactly the
//! editing mechanism Zhang et al.'s EditSQL introduced.

use crate::analysis::analyze;
use crate::grammar::{GrammarConfig, GrammarParser};
use nli_core::{Database, NlQuestion, NliError, Result, SemanticParser};
use nli_sql::{BinOp, Expr, OrderItem, Query, SelectItem};

/// Stateful dialogue parser wrapping a grammar parser for opening turns.
pub struct DialogueParser {
    base: GrammarParser,
    prev: Option<Query>,
}

impl DialogueParser {
    pub fn new(cfg: GrammarConfig) -> DialogueParser {
        DialogueParser {
            base: GrammarParser::new(cfg),
            prev: None,
        }
    }

    /// Forget conversation state (start a new dialogue).
    pub fn reset(&mut self) {
        self.prev = None;
    }

    /// Whether the text is a follow-up (context-dependent) utterance.
    fn is_follow_up(text: &str) -> FollowUp {
        let t = text.to_lowercase();
        if t.starts_with("only those") || t.starts_with("of those") {
            FollowUp::AddCondition
        } else if t.starts_with("sort them by") {
            FollowUp::Sort
        } else if t.contains("how many are there") {
            FollowUp::Count
        } else {
            FollowUp::None
        }
    }

    /// Tables (as schema indices) in scope of the previous query.
    fn prev_scope(&self, db: &Database) -> Vec<usize> {
        match &self.prev {
            Some(q) => q
                .tables()
                .iter()
                .filter_map(|n| db.schema.table_index(n))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Parse one turn, updating conversation state.
    pub fn parse_turn(&mut self, question: &NlQuestion, db: &Database) -> Result<Query> {
        let kind = Self::is_follow_up(&question.text);
        if kind == FollowUp::None || self.prev.is_none() {
            let q = self.base.parse(question, db)?;
            self.prev = Some(q.clone());
            return Ok(q);
        }
        let mut q = self.prev.clone().expect("checked above");
        let scope = self.prev_scope(db);
        if scope.is_empty() {
            return Err(NliError::Parse("lost conversation scope".into()));
        }
        let main = scope[0];
        let qualify = q.select.from.len() > 1;
        match kind {
            FollowUp::AddCondition => {
                let a = analyze(&question.text);
                let mut added = false;
                for sketch in &a.conds {
                    if let Some(expr) = self
                        .base
                        .ground_condition(sketch, db, &scope, main, qualify)
                    {
                        q.select.where_clause = Some(match q.select.where_clause.take() {
                            Some(w) => Expr::binary(w, BinOp::And, expr),
                            None => expr,
                        });
                        added = true;
                    }
                }
                if !added {
                    return Err(NliError::Parse(
                        "could not ground the follow-up condition".into(),
                    ));
                }
            }
            FollowUp::Sort => {
                let a = analyze(&question.text);
                let Some(o) = &a.order else {
                    return Err(NliError::Parse("no ordering found in follow-up".into()));
                };
                let Some(expr) = self
                    .base
                    .ground_order_column(&o.phrase, db, &scope, main, qualify)
                else {
                    return Err(NliError::Parse("could not ground the sort column".into()));
                };
                q.select.order_by = vec![OrderItem { expr, desc: o.desc }];
                q.select.limit = o.limit;
            }
            FollowUp::Count => {
                q.select.items = vec![SelectItem::plain(Expr::count_star())];
                q.select.order_by.clear();
                q.select.limit = None;
                q.select.distinct = false;
                q.select.group_by.clear();
                q.select.having = None;
            }
            FollowUp::None => unreachable!(),
        }
        self.prev = Some(q.clone());
        Ok(q)
    }
}

#[derive(Debug, PartialEq, Eq)]
enum FollowUp {
    None,
    AddCondition,
    Sort,
    Count,
}

#[cfg(test)]
mod tests {
    use super::*;
    use nli_core::{Column, DataType, Schema, Table};

    fn db() -> Database {
        let schema = Schema::new(
            "d",
            vec![Table::new(
                "singer",
                vec![
                    Column::new("id", DataType::Int).primary(),
                    Column::new("name", DataType::Text),
                    Column::new("age", DataType::Int),
                    Column::new("country", DataType::Text),
                ],
            )],
        );
        let mut d = Database::empty(schema);
        d.insert_all(
            "singer",
            vec![
                vec![1.into(), "Rosa Chen".into(), 30.into(), "France".into()],
                vec![2.into(), "Omar Quinn".into(), 45.into(), "Japan".into()],
            ],
        )
        .unwrap();
        d
    }

    #[test]
    fn full_sparc_style_dialogue() {
        let mut p = DialogueParser::new(GrammarConfig::neural());
        let d = db();
        let t1 = p
            .parse_turn(&NlQuestion::new("List the name of singers."), &d)
            .unwrap();
        assert_eq!(t1.to_string(), "SELECT name FROM singer");
        let t2 = p
            .parse_turn(&NlQuestion::new("Only those with age greater than 35."), &d)
            .unwrap();
        assert_eq!(t2.to_string(), "SELECT name FROM singer WHERE age > 35");
        let t3 = p
            .parse_turn(
                &NlQuestion::new("Of those, keep the ones whose country is 'Japan'."),
                &d,
            )
            .unwrap();
        assert_eq!(
            t3.to_string(),
            "SELECT name FROM singer WHERE age > 35 AND country = 'Japan'"
        );
        let t4 = p
            .parse_turn(
                &NlQuestion::new("Sort them by age in descending order and show the top 1."),
                &d,
            )
            .unwrap();
        assert!(t4.to_string().ends_with("ORDER BY age DESC LIMIT 1"));
        let t5 = p
            .parse_turn(&NlQuestion::new("How many are there?"), &d)
            .unwrap();
        assert_eq!(
            t5.to_string(),
            "SELECT COUNT(*) FROM singer WHERE age > 35 AND country = 'Japan'"
        );
    }

    #[test]
    fn follow_up_without_context_falls_back_to_fresh_parse() {
        let mut p = DialogueParser::new(GrammarConfig::neural());
        let d = db();
        // "Only those..." with no previous turn cannot stand alone, but the
        // parser should not panic; it attempts a fresh parse and errs.
        let r = p.parse_turn(&NlQuestion::new("Only those with age above 30."), &d);
        assert!(r.is_err() || r.is_ok()); // must not panic; either outcome is allowed
    }

    #[test]
    fn reset_clears_state() {
        let mut p = DialogueParser::new(GrammarConfig::neural());
        let d = db();
        p.parse_turn(&NlQuestion::new("List the name of singers."), &d)
            .unwrap();
        p.reset();
        // after reset the count follow-up has no scope; fresh parse happens
        let r = p.parse_turn(&NlQuestion::new("How many are there?"), &d);
        // "how many are there" alone has no table; expect an error
        assert!(r.is_err());
    }

    #[test]
    fn ungroundable_follow_up_is_an_error_but_keeps_state() {
        let mut p = DialogueParser::new(GrammarConfig::neural());
        let d = db();
        p.parse_turn(&NlQuestion::new("List the name of singers."), &d)
            .unwrap();
        let r = p.parse_turn(
            &NlQuestion::new("Only those with flibbertigibbet above 3."),
            &d,
        );
        assert!(r.is_err());
        // the previous state still allows continuing the dialogue
        let t = p
            .parse_turn(&NlQuestion::new("How many are there?"), &d)
            .unwrap();
        assert_eq!(t.to_string(), "SELECT COUNT(*) FROM singer");
    }
}
