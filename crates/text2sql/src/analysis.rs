//! Shallow question analysis: the pattern layer shared by every parser.
//!
//! The analyzer extracts *sketches* — phrase-level hypotheses about the
//! query's shape (aggregate intent, projections, conditions, grouping,
//! ordering, nesting, set operations) — without committing to any schema
//! element. Parsers then ground the sketches through their own linkers,
//! which is where the stages of the taxonomy genuinely differ.
//!
//! This mirrors how the traditional-stage systems worked (NaLIR's
//! parse-tree node mapping, ATHENA's ontology evidence) and what the
//! neural/LLM stages learn implicitly; here it is one deterministic,
//! testable component.

use nli_core::{Date, Value};
use nli_nlu::{tokenize, Token, TokenKind};
use nli_sql::{AggFunc, BinOp, SetOp};

/// Comparison flavor of a condition sketch.
#[derive(Debug, Clone, PartialEq)]
pub enum CmpKind {
    Op(BinOp),
    Between,
    Contains,
    /// "with a high X" — needs external knowledge to resolve.
    KnowledgeHigh,
    /// "with a low X".
    KnowledgeLow,
}

/// A condition hypothesis: column phrase + comparison + literal(s).
#[derive(Debug, Clone, PartialEq)]
pub struct CondSketch {
    pub col_phrase: String,
    pub kind: CmpKind,
    pub value: Option<Value>,
    pub value2: Option<Value>,
}

/// Aggregate intent; `arg_phrase = None` means `COUNT(*)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSketch {
    pub func: AggFunc,
    pub arg_phrase: Option<String>,
}

/// Ordering intent.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderSketch {
    /// Phrase after "sorted by"; "the result" refers to the aggregate.
    pub phrase: String,
    pub desc: bool,
    pub limit: Option<u64>,
}

/// "that have (no | at least one) CHILD" intent.
#[derive(Debug, Clone, PartialEq)]
pub struct NestedSketch {
    pub negated: bool,
    pub child_phrase: String,
}

/// The analyzer's output.
#[derive(Debug, Clone, Default)]
pub struct QuestionAnalysis {
    pub tokens: Vec<Token>,
    pub agg: Option<AggSketch>,
    /// Projection column phrases ("the X and Y of ...").
    pub projections: Vec<String>,
    /// The head's table phrase ("... of PRODUCTS with ...").
    pub table_phrase: Option<String>,
    /// "for each KEY" phrase.
    pub group_phrase: Option<String>,
    pub conds: Vec<CondSketch>,
    /// "with the maximum X" superlatives.
    pub superlatives: Vec<(AggFunc, String)>,
    pub order: Option<OrderSketch>,
    /// "keeping only groups with more than N ..." threshold.
    pub having_min: Option<i64>,
    pub nested: Option<NestedSketch>,
    pub compound: Option<SetOp>,
    pub distinct: bool,
}

/// Words that terminate a backwards column-phrase walk.
fn is_boundary(word: &str) -> bool {
    matches!(
        word,
        "with"
            | "whose"
            | "and"
            | "or"
            | "but"
            | "also"
            | "not"
            | "the"
            | "of"
            | "that"
            | "only"
            | "those"
            | "them"
            | "ones"
            | "keep"
            | "a"
            | "for"
            | "each"
            | "by"
            | "include"
            | "are"
            | "is"
            | "in"
            | "over"
            | "against"
            | "binned"
    )
}

/// Words that end a forward phrase walk (noun-phrase extraction).
fn ends_phrase(word: &str) -> bool {
    matches!(
        word,
        "with"
            | "whose"
            | "and"
            | "or"
            | "but"
            | "that"
            | "are"
            | "sorted"
            | "keeping"
            | "of"
            | "for"
            | "how"
            | "what"
            | "in"
            | "binned"
            | "over"
            | "against"
            | "only"
    )
}

struct Scanner {
    words: Vec<String>,
    kinds: Vec<TokenKind>,
    masked: Vec<bool>,
}

impl Scanner {
    fn new(tokens: &[Token]) -> Scanner {
        Scanner {
            words: tokens.iter().map(|t| t.text.to_lowercase()).collect(),
            kinds: tokens.iter().map(|t| t.kind).collect(),
            masked: vec![false; tokens.len()],
        }
    }

    fn len(&self) -> usize {
        self.words.len()
    }

    /// First unmasked occurrence of the word sequence, if any.
    fn find(&self, seq: &[&str]) -> Option<usize> {
        if seq.is_empty() || seq.len() > self.len() {
            return None;
        }
        'outer: for start in 0..=(self.len() - seq.len()) {
            for (k, w) in seq.iter().enumerate() {
                if self.masked[start + k]
                    || self.kinds[start + k] != TokenKind::Word
                    || self.words[start + k] != *w
                {
                    continue 'outer;
                }
            }
            return Some(start);
        }
        None
    }

    fn mask(&mut self, start: usize, end: usize) {
        for i in start..end.min(self.len()) {
            self.masked[i] = true;
        }
    }

    /// Collect the noun phrase starting at `start` (forward walk).
    fn phrase_from(&self, start: usize) -> (String, usize) {
        let mut out = Vec::new();
        let mut i = start;
        while i < self.len()
            && !self.masked[i]
            && self.kinds[i] == TokenKind::Word
            && !ends_phrase(&self.words[i])
            && out.len() < 4
        {
            out.push(self.words[i].clone());
            i += 1;
        }
        (out.join(" "), i)
    }

    /// Collect the noun phrase ending just before `end` (backward walk).
    fn phrase_before(&self, end: usize) -> String {
        let mut out = Vec::new();
        let mut i = end;
        while i > 0 {
            let j = i - 1;
            if self.masked[j]
                || self.kinds[j] != TokenKind::Word
                || is_boundary(&self.words[j])
                || out.len() >= 3
            {
                break;
            }
            out.push(self.words[j].clone());
            i = j;
        }
        out.reverse();
        out.join(" ")
    }

    /// The literal value at or shortly after `from` (within `window`).
    fn literal_after(&self, from: usize, window: usize) -> Option<(usize, Value)> {
        for i in from..(from + window).min(self.len()) {
            if self.masked[i] {
                continue;
            }
            match self.kinds[i] {
                TokenKind::Number => {
                    let n: f64 = self.words[i].parse().ok()?;
                    let v = if n.fract() == 0.0 && n.abs() < 1e15 {
                        Value::Int(n as i64)
                    } else {
                        Value::Float(n)
                    };
                    return Some((i, v));
                }
                TokenKind::Quoted => {
                    let raw = &self.words[i];
                    let v = match Date::parse(raw) {
                        Some(d) => Value::Date(d),
                        // quoted literals keep original case in Token.text,
                        // but we lower-cased; re-read is handled by caller.
                        None => Value::Text(raw.clone()),
                    };
                    return Some((i, v));
                }
                TokenKind::Word => match self.words[i].as_str() {
                    "true" => return Some((i, Value::Bool(true))),
                    "false" => return Some((i, Value::Bool(false))),
                    _ => continue,
                },
            }
        }
        None
    }
}

/// Analyze a question.
pub fn analyze(question: &str) -> QuestionAnalysis {
    let tokens = tokenize(question);
    let mut sc = Scanner::new(&tokens);
    // preserve literal casing: rebuild quoted words from original tokens
    let original_quotes: Vec<Option<String>> = tokens
        .iter()
        .map(|t| (t.kind == TokenKind::Quoted).then(|| t.text.clone()))
        .collect();

    let mut a = QuestionAnalysis {
        tokens: tokens.clone(),
        ..Default::default()
    };

    // --- HAVING ("keeping only groups with more than N ...") -------------
    if let Some(i) = sc.find(&["keeping", "only", "groups"]) {
        if let Some((li, Value::Int(n))) = sc.literal_after(i + 3, 4) {
            a.having_min = Some(n);
            sc.mask(i, li + 2); // include the trailing plural
        }
    }

    // --- ORDER ("sorted by X in DIR order [... top K]") -------------------
    if let Some(i) = sc
        .find(&["sorted", "by"])
        .or_else(|| sc.find(&["sort", "them", "by"]).map(|j| j + 1))
    {
        let (phrase, mut j) = sc.phrase_from(i + 2);
        let mut desc = false;
        if sc.words.get(j).map(String::as_str) == Some("in") {
            if let Some(dir) = sc.words.get(j + 1) {
                desc = dir == "descending";
                j += 3; // in <dir> order
            }
        }
        let mut limit = None;
        if let Some(t) = sc.find(&["top"]) {
            if let Some((li, Value::Int(k))) = sc.literal_after(t + 1, 2) {
                limit = Some(k as u64);
                sc.mask(t, li + 1);
            }
        }
        a.order = Some(OrderSketch {
            phrase: if phrase == "the result" {
                "the result".into()
            } else {
                phrase
            },
            desc,
            limit,
        });
        sc.mask(i, j);
    }

    // --- nested ("that have no X" / "that have at least one X") ----------
    if let Some(i) = sc.find(&["that", "have", "no"]) {
        let (child, j) = sc.phrase_from(i + 3);
        if !child.is_empty() {
            a.nested = Some(NestedSketch {
                negated: true,
                child_phrase: child,
            });
            sc.mask(i, j);
        }
    } else if let Some(i) = sc.find(&["that", "have", "at", "least", "one"]) {
        let (child, j) = sc.phrase_from(i + 5);
        if !child.is_empty() {
            a.nested = Some(NestedSketch {
                negated: false,
                child_phrase: child,
            });
            sc.mask(i, j);
        }
    }

    // --- superlatives ("with the maximum/minimum X") ----------------------
    for (kw, func) in [("maximum", AggFunc::Max), ("minimum", AggFunc::Min)] {
        if let Some(i) = sc.find(&["with", "the", kw]) {
            let (phrase, j) = sc.phrase_from(i + 3);
            if !phrase.is_empty() {
                a.superlatives.push((func, phrase));
                sc.mask(i, j);
            }
        }
    }

    // --- knowledge concepts ("with a high/low X") --------------------------
    for (kw, kind) in [
        ("high", CmpKind::KnowledgeHigh),
        ("low", CmpKind::KnowledgeLow),
    ] {
        while let Some(i) = sc.find(&["with", "a", kw]) {
            let (phrase, j) = sc.phrase_from(i + 3);
            if phrase.is_empty() {
                break;
            }
            a.conds.push(CondSketch {
                col_phrase: phrase,
                kind: kind.clone(),
                value: None,
                value2: None,
            });
            sc.mask(i, j);
        }
    }

    // --- compound connector -------------------------------------------------
    if sc.find(&["but", "not"]).is_some() {
        a.compound = Some(SetOp::Except);
    } else if sc.find(&["and", "also"]).is_some() {
        a.compound = Some(SetOp::Intersect);
    }

    // --- head: aggregate/count/projection ----------------------------------
    analyze_head(&mut a, &mut sc);

    // --- group key ("for each X") -------------------------------------------
    if let Some(i) = sc.find(&["for", "each"]).or_else(|| sc.find(&["each"])) {
        let start = if sc.words[i] == "for" { i + 2 } else { i + 1 };
        let (phrase, j) = sc.phrase_from(start);
        if !phrase.is_empty() {
            a.group_phrase = Some(phrase);
            sc.mask(i, j);
        }
    }

    // --- plain conditions -----------------------------------------------------
    scan_conditions(&mut a, &mut sc, &original_quotes);

    // decide UNION after conditions exist: a bare "or" between two conds
    if a.compound.is_none() && a.conds.len() >= 2 && sc.find(&["or"]).is_some() {
        a.compound = Some(SetOp::Union);
    }

    a
}

fn analyze_head(a: &mut QuestionAnalysis, sc: &mut Scanner) {
    let agg_of = |w: &str| -> Option<AggFunc> {
        Some(match w {
            "average" | "mean" => AggFunc::Avg,
            "total" | "sum" => AggFunc::Sum,
            "maximum" | "highest" => AggFunc::Max,
            "minimum" | "lowest" => AggFunc::Min,
            _ => return None,
        })
    };

    // "how many T ..." => count
    if let Some(i) = sc.find(&["how", "many"]) {
        let (table, j) = sc.phrase_from(i + 2);
        a.agg = Some(AggSketch {
            func: AggFunc::Count,
            arg_phrase: None,
        });
        if !table.is_empty() {
            a.table_phrase = Some(table);
        }
        sc.mask(i, j);
        return;
    }
    // "count the T" / "the number of T"
    if let Some(i) = sc.find(&["count", "the"]) {
        let (table, j) = sc.phrase_from(i + 2);
        a.agg = Some(AggSketch {
            func: AggFunc::Count,
            arg_phrase: None,
        });
        if !table.is_empty() {
            a.table_phrase = Some(table);
        }
        sc.mask(i, j);
        return;
    }
    if let Some(i) = sc.find(&["number", "of"]) {
        let (table, j) = sc.phrase_from(i + 2);
        a.agg = Some(AggSketch {
            func: AggFunc::Count,
            arg_phrase: None,
        });
        if !table.is_empty() {
            a.table_phrase = Some(table);
        }
        sc.mask(i.saturating_sub(2), j);
        return;
    }

    // "(what is|find) the AGGWORD X of T"
    for start in 0..sc.len() {
        if sc.masked[start] || sc.kinds[start] != TokenKind::Word {
            continue;
        }
        if let Some(func) = agg_of(&sc.words[start]) {
            // arg phrase: words after (skipping "of the" for "sum of the")
            let mut k = start + 1;
            if sc.words.get(k).map(String::as_str) == Some("of")
                && sc.words.get(k + 1).map(String::as_str) == Some("the")
            {
                k += 2;
            }
            let (arg, j) = sc.phrase_from(k);
            if arg.is_empty() {
                continue;
            }
            // table phrase after the next "of"
            let mut table = None;
            let mut end = j;
            if sc.words.get(j).map(String::as_str) == Some("of") {
                let (t, j2) = sc.phrase_from(j + 1);
                if !t.is_empty() {
                    table = Some(t);
                    end = j2;
                }
            }
            a.agg = Some(AggSketch {
                func,
                arg_phrase: Some(arg),
            });
            a.table_phrase = table;
            sc.mask(start.saturating_sub(2), end);
            return;
        }
    }

    // projection: "(list|show|give|what are) the [different] X [and Y] of T"
    let verb = ["list", "show", "give", "plot", "draw"]
        .iter()
        .find_map(|v| sc.find(&[v]))
        .or_else(|| sc.find(&["what", "are"]));
    if let Some(v) = verb {
        // find the "the" after the verb
        let mut i = v + 1;
        while i < sc.len() && sc.words[i] != "the" {
            if i > v + 3 {
                return;
            }
            i += 1;
        }
        if i >= sc.len() {
            return;
        }
        let mut k = i + 1;
        if sc.words.get(k).map(String::as_str) == Some("different") {
            a.distinct = true;
            k += 1;
        }
        let (first, mut j) = sc.phrase_from(k);
        if first.is_empty() {
            return;
        }
        a.projections.push(first);
        if sc.words.get(j).map(String::as_str) == Some("and") {
            let (second, j2) = sc.phrase_from(j + 1);
            if !second.is_empty() {
                a.projections.push(second);
                j = j2;
            }
        }
        let mut end = j;
        if sc.words.get(j).map(String::as_str) == Some("of") {
            let (t, j2) = sc.phrase_from(j + 1);
            if !t.is_empty() {
                a.table_phrase = Some(t);
                end = j2;
            }
        } else {
            // "List the products with ..." (implicit column): the phrase IS
            // the table.
            a.table_phrase = Some(a.projections.remove(0));
        }
        sc.mask(v, end);
    }
}

/// Comparator keyword table: sequence → (kind, date-flavoured?).
const COMPARATORS: &[(&[&str], BinOp)] = &[
    (&["greater", "than"], BinOp::Gt),
    (&["more", "than"], BinOp::Gt),
    (&["above"], BinOp::Gt),
    (&["less", "than"], BinOp::Lt),
    (&["below"], BinOp::Lt),
    (&["under"], BinOp::Lt),
    (&["at", "least"], BinOp::Ge),
    (&["at", "most"], BinOp::Le),
    (&["on", "or", "after"], BinOp::Ge),
    (&["on", "or", "before"], BinOp::Le),
    (&["after"], BinOp::Gt),
    (&["before"], BinOp::Lt),
    (&["is", "not"], BinOp::Neq),
    (&["equal", "to"], BinOp::Eq),
    (&["is"], BinOp::Eq),
];

fn scan_conditions(a: &mut QuestionAnalysis, sc: &mut Scanner, original_quotes: &[Option<String>]) {
    // BETWEEN first (it consumes two literals)
    while let Some(i) = sc.find(&["between"]) {
        let col = sc.phrase_before(i);
        let Some((l1, v1)) = sc.literal_after(i + 1, 2) else {
            break;
        };
        let Some((l2, v2)) = sc.literal_after(l1 + 2, 2) else {
            break;
        };
        if col.is_empty() {
            sc.mask(i, i + 1);
            continue;
        }
        let col_len = col.split_whitespace().count();
        a.conds.push(CondSketch {
            col_phrase: col,
            kind: CmpKind::Between,
            value: Some(restore_case(v1, l1, original_quotes)),
            value2: Some(restore_case(v2, l2, original_quotes)),
        });
        sc.mask(i.saturating_sub(col_len), l2 + 1);
    }

    // CONTAINS
    while let Some(i) = sc.find(&["contains"]) {
        let col = sc.phrase_before(i);
        let Some((li, v)) = sc.literal_after(i + 1, 2) else {
            break;
        };
        let col_len = col.split_whitespace().count();
        if !col.is_empty() {
            a.conds.push(CondSketch {
                col_phrase: col,
                kind: CmpKind::Contains,
                value: Some(restore_case(v, li, original_quotes)),
                value2: None,
            });
        }
        sc.mask(i.saturating_sub(col_len.max(1)), li + 1);
    }

    // generic comparators, longest keyword first (table is ordered)
    loop {
        let mut hit: Option<(usize, usize, BinOp)> = None;
        for (seq, op) in COMPARATORS {
            if let Some(i) = sc.find(seq) {
                if hit.is_none() || i < hit.unwrap().0 {
                    hit = Some((i, seq.len(), *op));
                }
            }
        }
        let Some((i, klen, op)) = hit else { break };
        let Some((li, v)) = sc.literal_after(i + klen, 3) else {
            sc.mask(i, i + klen);
            continue;
        };
        let col = sc.phrase_before(i);
        if col.is_empty() {
            sc.mask(i, li + 1);
            continue;
        }
        let col_len = col.split_whitespace().count();
        a.conds.push(CondSketch {
            col_phrase: col,
            kind: CmpKind::Op(op),
            value: Some(restore_case(v, li, original_quotes)),
            value2: None,
        });
        sc.mask(i.saturating_sub(col_len), li + 1);
    }
}

/// Quoted literals were lower-cased by the scanner; restore the original
/// spelling from the token stream.
fn restore_case(v: Value, index: usize, original_quotes: &[Option<String>]) -> Value {
    match (&v, original_quotes.get(index).and_then(|o| o.as_ref())) {
        (Value::Text(_), Some(orig)) => Value::Text(orig.clone()),
        _ => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_question() {
        let a = analyze("How many singers with age greater than 30 are there?");
        let agg = a.agg.unwrap();
        assert_eq!(agg.func, AggFunc::Count);
        assert!(agg.arg_phrase.is_none());
        assert_eq!(a.table_phrase.as_deref(), Some("singers"));
        assert_eq!(a.conds.len(), 1);
        assert_eq!(a.conds[0].col_phrase, "age");
        assert_eq!(a.conds[0].kind, CmpKind::Op(BinOp::Gt));
        assert_eq!(a.conds[0].value, Some(Value::Int(30)));
    }

    #[test]
    fn average_question() {
        let a = analyze("What is the average age of singers whose country is 'France'?");
        let agg = a.agg.unwrap();
        assert_eq!(agg.func, AggFunc::Avg);
        assert_eq!(agg.arg_phrase.as_deref(), Some("age"));
        assert_eq!(a.table_phrase.as_deref(), Some("singers"));
        assert_eq!(a.conds[0].col_phrase, "country");
        assert_eq!(a.conds[0].value, Some(Value::from("France")));
    }

    #[test]
    fn sum_of_the_variant() {
        let a = analyze("Find the sum of the price of products.");
        let agg = a.agg.unwrap();
        assert_eq!(agg.func, AggFunc::Sum);
        assert_eq!(agg.arg_phrase.as_deref(), Some("price"));
        assert_eq!(a.table_phrase.as_deref(), Some("products"));
    }

    #[test]
    fn projection_with_two_columns_and_order() {
        let a = analyze(
            "List the name and price of products with price above 5, sorted by price in descending order, and show only the top 3.",
        );
        assert_eq!(a.projections, vec!["name", "price"]);
        assert_eq!(a.table_phrase.as_deref(), Some("products"));
        let o = a.order.unwrap();
        assert!(o.desc);
        assert_eq!(o.limit, Some(3));
        assert_eq!(o.phrase, "price");
        assert_eq!(a.conds.len(), 1);
    }

    #[test]
    fn group_by_question() {
        let a = analyze(
            "For each category, what is the average price of products, keeping only groups with more than 2 products?",
        );
        assert_eq!(a.group_phrase.as_deref(), Some("category"));
        assert_eq!(a.having_min, Some(2));
        let agg = a.agg.unwrap();
        assert_eq!(agg.func, AggFunc::Avg);
        // the HAVING "more than 2" must NOT leak into plain conditions
        assert!(a.conds.is_empty(), "{:?}", a.conds);
    }

    #[test]
    fn nested_question() {
        let a = analyze("List the name of singers that have no concert.");
        let n = a.nested.unwrap();
        assert!(n.negated);
        assert_eq!(n.child_phrase, "concert");
        assert_eq!(a.projections, vec!["name"]);
        let a2 = analyze(
            "List the name of singers that have at least one concert with attendance above 1000.",
        );
        let n2 = a2.nested.unwrap();
        assert!(!n2.negated);
        assert_eq!(a2.conds.len(), 1);
        assert_eq!(a2.conds[0].col_phrase, "attendance");
    }

    #[test]
    fn superlative_question() {
        let a = analyze("Show the name of products with the maximum price.");
        assert_eq!(a.superlatives, vec![(AggFunc::Max, "price".to_string())]);
        assert!(a.conds.is_empty());
    }

    #[test]
    fn knowledge_condition() {
        let a = analyze("How many products with a high price are there?");
        assert_eq!(a.conds.len(), 1);
        assert_eq!(a.conds[0].kind, CmpKind::KnowledgeHigh);
        assert_eq!(a.conds[0].col_phrase, "price");
        assert!(a.conds[0].value.is_none());
    }

    #[test]
    fn compound_connectors() {
        let a = analyze(
            "List the name of products whose category is 'Toys' but not whose category is 'Tools'.",
        );
        assert_eq!(a.compound, Some(SetOp::Except));
        assert_eq!(a.conds.len(), 2);
        let b = analyze(
            "List the name of products whose category is 'Toys' or whose category is 'Tools'.",
        );
        assert_eq!(b.compound, Some(SetOp::Union));
        let c =
            analyze("List the name of products with price above 5 and also with price below 100.");
        assert_eq!(c.compound, Some(SetOp::Intersect));
    }

    #[test]
    fn between_and_contains() {
        let a = analyze("Show the name of products with price between 5 and 10.");
        assert_eq!(a.conds[0].kind, CmpKind::Between);
        assert_eq!(a.conds[0].value, Some(Value::Int(5)));
        assert_eq!(a.conds[0].value2, Some(Value::Int(10)));
        let b = analyze("List the name of products whose name contains 'Wid'.");
        assert_eq!(b.conds[0].kind, CmpKind::Contains);
        assert_eq!(b.conds[0].value, Some(Value::from("Wid")));
    }

    #[test]
    fn date_literals_parse_as_dates() {
        let a = analyze("Count the sales with sale date after '2024-01-15'.");
        assert_eq!(a.conds[0].kind, CmpKind::Op(BinOp::Gt));
        assert!(matches!(a.conds[0].value, Some(Value::Date(_))));
        assert_eq!(a.conds[0].col_phrase, "sale date");
    }

    #[test]
    fn quoted_case_is_preserved() {
        let a = analyze("List the name of stores whose city is 'Springfield'.");
        assert_eq!(a.conds[0].value, Some(Value::from("Springfield")));
    }

    #[test]
    fn boolean_literal() {
        let a = analyze("How many employees whose remote flag is true are there?");
        assert_eq!(a.conds[0].value, Some(Value::Bool(true)));
        assert_eq!(a.conds[0].col_phrase, "remote flag");
    }

    #[test]
    fn distinct_marker() {
        let a = analyze("List the different category of products.");
        assert!(a.distinct);
        assert_eq!(a.projections, vec!["category"]);
    }

    #[test]
    fn implicit_column_projection_falls_back_to_table() {
        let a = analyze("List the products with price above 5.");
        assert!(a.projections.is_empty());
        assert_eq!(a.table_phrase.as_deref(), Some("products"));
    }

    #[test]
    fn empty_and_garbage_questions_dont_panic() {
        analyze("");
        analyze("???");
        analyze("blargh blargh blargh");
    }
}
