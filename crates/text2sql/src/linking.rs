//! Schema linking: matching question spans to tables, columns, and values.
//!
//! This is the survey's recurring bottleneck — every stage of the taxonomy
//! is, at heart, a different way of doing (and then consuming) schema
//! linking. [`LinkConfig`] switches the individual signals on and off so
//! the same linker models a NaLIR-era lexical matcher, a BERT-era learned
//! linker (via the trained [`nli_lm::AlignmentModel`]), or an LLM-era
//! linker with synonym/embedding "world knowledge" — and the Table 4
//! robustness experiments ablate exactly these switches.

use nli_core::{ColumnRef, Database, Prng, Value};
use nli_lm::AlignmentModel;
use nli_nlu::{
    is_stopword, lexical_similarity, stem, tokenize, Embedding, SynonymLexicon, Token, TokenKind,
};

/// Which linking signals are enabled.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Exact / stemmed / edit-distance lexical matching (every era has it).
    pub lexical: bool,
    /// Synonym-lexicon expansion (world knowledge).
    pub synonyms: bool,
    /// Character-trigram embedding similarity (subword generalization).
    pub embeddings: bool,
    /// Ground quoted literals against database *content* (value linking).
    pub values: bool,
    /// Learned token↔schema statistics (requires a trained model).
    pub alignment: Option<AlignmentModel>,
    /// Minimum score for a span to count as a column mention.
    pub threshold: f64,
}

impl LinkConfig {
    /// Traditional-stage linker: lexical matching only.
    pub fn lexical_only() -> LinkConfig {
        LinkConfig {
            lexical: true,
            synonyms: false,
            embeddings: false,
            values: true,
            alignment: None,
            threshold: 0.62,
        }
    }

    /// Neural-stage linker: lexical + learned alignment statistics.
    pub fn learned(alignment: AlignmentModel) -> LinkConfig {
        LinkConfig {
            lexical: true,
            synonyms: false,
            embeddings: true,
            values: true,
            alignment: Some(alignment),
            threshold: 0.55,
        }
    }

    /// LLM-stage linker: everything, including synonym world knowledge.
    pub fn world_knowledge() -> LinkConfig {
        LinkConfig {
            lexical: true,
            synonyms: true,
            embeddings: true,
            values: true,
            alignment: None,
            threshold: 0.55,
        }
    }

    pub fn with_alignment(mut self, alignment: AlignmentModel) -> LinkConfig {
        self.alignment = Some(alignment);
        self
    }
}

/// One column link: where in the question, which column, how confident.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnLink {
    /// Word-index span `[start, end)` in the content-token sequence.
    pub start: usize,
    pub len: usize,
    pub col: ColumnRef,
    pub score: f64,
}

/// One value link: a literal grounded to the column(s) containing it.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueLink {
    pub col: ColumnRef,
    pub value: Value,
}

/// The linker's output for one question.
#[derive(Debug, Clone, Default)]
pub struct LinkingResult {
    /// Per-table mention score (index-aligned with `schema.tables`).
    pub table_scores: Vec<f64>,
    /// Column mentions, best-first.
    pub columns: Vec<ColumnLink>,
    /// Grounded literals.
    pub values: Vec<ValueLink>,
    /// Content tokens (words minus stopwords) the spans index into.
    pub tokens: Vec<String>,
}

impl LinkingResult {
    /// Best-scoring table, if any scored above zero.
    pub fn best_table(&self) -> Option<usize> {
        let (i, s) = self
            .table_scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))?;
        if *s > 0.0 {
            Some(i)
        } else {
            None
        }
    }

    /// Best column link overlapping the token span `[start, end)`.
    pub fn column_in_span(&self, start: usize, end: usize) -> Option<&ColumnLink> {
        self.columns
            .iter()
            .filter(|l| l.start < end && l.start + l.len > start)
            .max_by(|a, b| a.score.total_cmp(&b.score))
    }
}

/// The schema linker.
pub struct Linker {
    pub config: LinkConfig,
    lexicon: SynonymLexicon,
}

impl Linker {
    pub fn new(config: LinkConfig) -> Linker {
        Linker {
            config,
            lexicon: SynonymLexicon::default_english(),
        }
    }

    /// Similarity of a question span to a schema phrase under the enabled
    /// signals.
    pub fn phrase_score(&self, span: &str, schema_phrase: &str, schema_name: &str) -> f64 {
        let mut best: f64 = 0.0;
        if self.config.lexical {
            // compare stems so "singers" matches "singer"
            let stemmed_span: String = span
                .split_whitespace()
                .map(stem)
                .collect::<Vec<_>>()
                .join(" ");
            let stemmed_schema: String = schema_phrase
                .split_whitespace()
                .map(stem)
                .collect::<Vec<_>>()
                .join(" ");
            best = best
                .max(lexical_similarity(&stemmed_span, &stemmed_schema))
                .max(lexical_similarity(span, schema_phrase));
        }
        if self.config.synonyms && best < 1.0 {
            // any word-for-word synonym alignment counts as a strong match
            let span_words: Vec<&str> = span.split_whitespace().collect();
            let schema_words: Vec<&str> = schema_phrase.split_whitespace().collect();
            if span_words.len() == schema_words.len() && !span_words.is_empty() {
                let all = span_words.iter().zip(&schema_words).all(|(a, b)| {
                    stem(a) == stem(b) || self.lexicon.are_synonyms(&stem(a), &stem(b))
                });
                if all {
                    best = best.max(0.92);
                }
            }
            // single span word synonymous with any schema word
            if span_words.len() == 1 {
                for w in &schema_words {
                    if self.lexicon.are_synonyms(&stem(span_words[0]), &stem(w)) {
                        best = best.max(0.75);
                    }
                }
            }
        }
        if self.config.embeddings && best < 0.9 {
            let cos = Embedding::of(span).cosine(&Embedding::of(schema_phrase));
            // embeddings are noisy: scale down so exact matches dominate
            best = best.max(0.85 * cos);
        }
        let _ = schema_name;
        // spans longer than the schema phrase carry extra words — penalize
        // so "unit price products" can't outscore "unit price".
        let span_n = span.split_whitespace().count();
        let schema_n = schema_phrase.split_whitespace().count().max(1);
        if span_n > schema_n {
            best *= schema_n as f64 / span_n as f64;
        }
        best
    }

    /// Link a question against a database.
    pub fn link(&self, question: &str, db: &Database) -> LinkingResult {
        let raw = tokenize(question);
        let tokens: Vec<Token> = raw
            .into_iter()
            .filter(|t| t.kind != TokenKind::Word || !is_stopword(&t.text))
            .collect();
        let words: Vec<String> = tokens.iter().map(|t| t.text.clone()).collect();

        // --- table scores -------------------------------------------------
        let mut table_scores = vec![0.0; db.schema.tables.len()];
        for (ti, t) in db.schema.tables.iter().enumerate() {
            let phrases = [t.display.clone(), t.name.replace('_', " ")];
            for w in &words {
                for p in &phrases {
                    let s = self.phrase_score(w, p, &t.name);
                    if s > table_scores[ti] {
                        table_scores[ti] = s;
                    }
                }
            }
            if let Some(al) = &self.config.alignment {
                for w in &words {
                    let s = al.table_score(w, &t.name);
                    if s > 0.0 {
                        table_scores[ti] = table_scores[ti].max(0.5 + 0.5 * s);
                    }
                }
            }
            if table_scores[ti] < self.config.threshold {
                table_scores[ti] = 0.0;
            }
        }

        // --- column links (spans up to 3 words, longest-first greedy) ------
        let mut columns: Vec<ColumnLink> = Vec::new();
        let mut claimed = vec![false; words.len()];
        for n in (1..=3usize).rev() {
            if n > words.len() {
                continue;
            }
            for start in 0..=(words.len() - n) {
                if claimed[start..start + n].iter().any(|&c| c) {
                    continue;
                }
                if tokens[start..start + n]
                    .iter()
                    .any(|t| t.kind != TokenKind::Word)
                {
                    continue;
                }
                let span = words[start..start + n].join(" ");
                let mut best: Option<(f64, ColumnRef)> = None;
                for r in db.schema.all_columns() {
                    let c = db.schema.column(r);
                    let mut s = self.phrase_score(&span, &c.display, &c.name);
                    if let Some(al) = &self.config.alignment {
                        let learned = al.column_score(&span, &c.name);
                        if learned > 0.0 {
                            s = s.max(0.5 + 0.5 * learned);
                        }
                    }
                    if s >= self.config.threshold && best.is_none_or(|(bs, _)| s > bs) {
                        best = Some((s, r));
                    }
                }
                if let Some((score, col)) = best {
                    for c in claimed.iter_mut().skip(start).take(n) {
                        *c = true;
                    }
                    columns.push(ColumnLink {
                        start,
                        len: n,
                        col,
                        score,
                    });
                }
            }
        }
        columns.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.start.cmp(&b.start)));

        // --- value links ----------------------------------------------------
        let mut values = Vec::new();
        if self.config.values {
            for t in &tokens {
                if t.kind != TokenKind::Quoted {
                    continue;
                }
                for r in db.schema.all_columns() {
                    let col_values = db.distinct_values(r.table, r.column);
                    for v in &col_values {
                        match v {
                            Value::Text(s) if s.eq_ignore_ascii_case(&t.text) => {
                                values.push(ValueLink {
                                    col: r,
                                    value: v.clone(),
                                });
                            }
                            Value::Date(d) if d.to_string() == t.text => {
                                values.push(ValueLink {
                                    col: r,
                                    value: v.clone(),
                                });
                            }
                            _ => {}
                        }
                    }
                }
            }
        }

        LinkingResult {
            table_scores,
            columns,
            values,
            tokens: words,
        }
    }
}

/// Deterministically pick among near-tied alternatives — exposed so parsers
/// can break ties reproducibly without a shared global RNG.
pub fn tie_break(rng: &mut Prng, n: usize) -> usize {
    if n == 0 {
        0
    } else {
        rng.below(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nli_core::{Column, DataType, Schema, Table};

    fn db() -> Database {
        let mut schema = Schema::new(
            "shop",
            vec![
                Table::new(
                    "products",
                    vec![
                        Column::new("id", DataType::Int).primary(),
                        Column::new("name", DataType::Text),
                        Column::new("category", DataType::Text),
                        Column::new("price", DataType::Float),
                    ],
                )
                .with_display("product"),
                Table::new(
                    "singer",
                    vec![
                        Column::new("id", DataType::Int).primary(),
                        Column::new("age", DataType::Int),
                    ],
                ),
            ],
        );
        schema.domain = "retail".into();
        let mut d = Database::empty(schema);
        d.insert_all(
            "products",
            vec![
                vec![1.into(), "Widget".into(), "Tools".into(), 9.5.into()],
                vec![2.into(), "Gadget".into(), "Toys".into(), 19.0.into()],
            ],
        )
        .unwrap();
        d
    }

    #[test]
    fn exact_and_plural_mentions_link() {
        let l = Linker::new(LinkConfig::lexical_only());
        let r = l.link("show the price of products", &db());
        assert_eq!(r.best_table(), Some(0));
        assert!(r.columns.iter().any(|c| {
            c.col
                == ColumnRef {
                    table: 0,
                    column: 3,
                }
        }));
    }

    #[test]
    fn synonyms_require_the_synonym_signal() {
        let d = db();
        let lexical = Linker::new(LinkConfig::lexical_only());
        let world = Linker::new(LinkConfig::world_knowledge());
        // "cost" is a lexicon synonym of "price"
        let q = "show the cost of products";
        let price = ColumnRef {
            table: 0,
            column: 3,
        };
        let found = |r: &LinkingResult| r.columns.iter().any(|c| c.col == price);
        assert!(
            !found(&lexical.link(q, &d)),
            "lexical linker must miss the synonym"
        );
        assert!(
            found(&world.link(q, &d)),
            "world-knowledge linker must hit it"
        );
    }

    #[test]
    fn value_linking_grounds_quoted_literals() {
        let l = Linker::new(LinkConfig::lexical_only());
        let r = l.link("products whose category is 'Tools'", &db());
        assert_eq!(r.values.len(), 1);
        assert_eq!(
            r.values[0].col,
            ColumnRef {
                table: 0,
                column: 2
            }
        );
        assert_eq!(r.values[0].value, Value::from("Tools"));
    }

    #[test]
    fn learned_alignment_links_trained_vocabulary() {
        use nli_lm::TrainingExample;
        let mut al = AlignmentModel::new();
        al.train(&[TrainingExample {
            question: "how expensive are the products".into(),
            sql: nli_sql::parse_query("SELECT price FROM products").unwrap(),
        }]);
        let cfg = LinkConfig {
            lexical: false,
            synonyms: false,
            embeddings: false,
            values: false,
            alignment: Some(al),
            threshold: 0.5,
        };
        let l = Linker::new(cfg);
        let r = l.link("how expensive are these", &db());
        assert!(r.columns.iter().any(|c| c.col
            == ColumnRef {
                table: 0,
                column: 3
            }));
    }

    #[test]
    fn table_threshold_zeroes_weak_scores() {
        let l = Linker::new(LinkConfig::lexical_only());
        let r = l.link("completely unrelated gibberish", &db());
        assert_eq!(r.best_table(), None);
        assert!(r.columns.is_empty());
    }

    #[test]
    fn multiword_spans_beat_single_words() {
        let mut d = db();
        d.schema.tables[0].columns[3].display = "unit price".into();
        let l = Linker::new(LinkConfig::lexical_only());
        let r = l.link("show the unit price of products", &d);
        let link = r
            .columns
            .iter()
            .find(|c| {
                c.col
                    == ColumnRef {
                        table: 0,
                        column: 3,
                    }
            })
            .expect("unit price should link");
        assert_eq!(link.len, 2);
    }

    #[test]
    fn column_in_span_respects_bounds() {
        let l = Linker::new(LinkConfig::lexical_only());
        let r = l.link("price of products with age above 3", &db());
        // "price" is content-token 0
        assert!(r.column_in_span(0, 1).is_some());
        let far = r.tokens.len();
        assert!(r.column_in_span(far, far + 1).is_none());
    }
}
