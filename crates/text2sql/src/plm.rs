//! PLM-stage parsing (BRIDGE/UnifiedSKG/RESDSQL-class).
//!
//! A fine-tuned pretrained language model is modelled as the grammar parser
//! equipped with everything supervised training provides: a learned
//! token↔schema alignment (the fine-tuned encoder), subword-embedding
//! linking (the pretrained prior), and grammar-constrained decoding (the
//! PICARD component every top PLM system bolts on). What it *lacks*, by
//! design, is synonym world knowledge and evidence use — so it shows the
//! PLM signature: excellent in-domain, brittle under Spider-SYN-style
//! perturbation and on knowledge-grounded benchmarks, exactly the gaps the
//! survey's robustness discussion highlights.

use crate::grammar::{GrammarConfig, GrammarParser};
use nli_core::{Database, NlQuestion, NliError, Result, SemanticParser};
use nli_lm::{AlignmentModel, TrainingExample};
use nli_sql::Query;

/// PLM-stage Text-to-SQL parser. Train before use.
pub struct PlmParser {
    inner: Option<GrammarParser>,
    examples_seen: usize,
    name: String,
}

impl PlmParser {
    pub fn new() -> PlmParser {
        PlmParser {
            inner: None,
            examples_seen: 0,
            name: "plm-finetuned".to_string(),
        }
    }

    /// Override the report name (e.g. "plm+pretraining").
    pub fn named(mut self, name: &str) -> PlmParser {
        self.name = name.to_string();
        self
    }

    /// Fine-tune on supervised pairs (rebuilds the internal parser with the
    /// learned alignment).
    pub fn train(&mut self, examples: &[TrainingExample]) {
        let mut alignment = AlignmentModel::new();
        alignment.train(examples);
        self.examples_seen += examples.len();
        let cfg = GrammarConfig::neural()
            .with_alignment(alignment)
            .named(&self.name);
        self.inner = Some(GrammarParser::new(cfg));
    }

    pub fn is_trained(&self) -> bool {
        self.inner.is_some()
    }

    pub fn examples_seen(&self) -> usize {
        self.examples_seen
    }

    /// Candidate access for execution-guided wrapping.
    pub fn candidates(&self, question: &NlQuestion, db: &Database, k: usize) -> Vec<Query> {
        match &self.inner {
            Some(p) => p.parse_candidates(question, db, k),
            None => Vec::new(),
        }
    }
}

impl Default for PlmParser {
    fn default() -> Self {
        PlmParser::new()
    }
}

impl SemanticParser for PlmParser {
    type Expr = Query;

    fn parse(&self, question: &NlQuestion, db: &Database) -> Result<Query> {
        match &self.inner {
            Some(p) => p.parse(question, db),
            None => Err(NliError::Model("PLM parser is untrained".into())),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl crate::execution_guided::CandidateParser for PlmParser {
    fn candidates(&self, question: &NlQuestion, db: &Database, k: usize) -> Vec<Query> {
        PlmParser::candidates(self, question, db, k)
    }
    fn base_name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nli_core::{Column, DataType, Schema, Table};
    use nli_sql::parse_query;

    fn db() -> Database {
        let schema = Schema::new(
            "d",
            vec![Table::new(
                "employees",
                vec![
                    Column::new("id", DataType::Int).primary(),
                    Column::new("name", DataType::Text),
                    Column::new("salary", DataType::Float),
                ],
            )],
        );
        let mut d = Database::empty(schema);
        d.insert_all(
            "employees",
            vec![
                vec![1.into(), "Rosa Chen".into(), 50000.0.into()],
                vec![2.into(), "Omar Quinn".into(), 80000.0.into()],
            ],
        )
        .unwrap();
        d
    }

    #[test]
    fn untrained_refuses() {
        let p = PlmParser::new();
        assert!(p
            .parse(&NlQuestion::new("How many employees are there?"), &db())
            .is_err());
        assert!(!p.is_trained());
    }

    #[test]
    fn trained_parser_resolves_learned_vocabulary() {
        let mut p = PlmParser::new();
        // training teaches that "earnings" aligns with the salary column
        p.train(&[
            TrainingExample {
                question: "what are the earnings of employees".into(),
                sql: parse_query("SELECT salary FROM employees").unwrap(),
            },
            TrainingExample {
                question: "average earnings of employees".into(),
                sql: parse_query("SELECT AVG(salary) FROM employees").unwrap(),
            },
        ]);
        assert!(p.is_trained());
        assert_eq!(p.examples_seen(), 2);
        let q = NlQuestion::new("What is the average earnings of employees?");
        let sql = p.parse(&q, &db()).unwrap().to_string();
        assert_eq!(sql, "SELECT AVG(salary) FROM employees");
    }

    #[test]
    fn candidates_work_through_the_trait() {
        use crate::execution_guided::CandidateParser;
        let mut p = PlmParser::new();
        p.train(&[TrainingExample {
            question: "how many employees are there".into(),
            sql: parse_query("SELECT COUNT(*) FROM employees").unwrap(),
        }]);
        let q = NlQuestion::new("How many employees with salary above 60000 are there?");
        let cands = CandidateParser::candidates(&p, &q, &db(), 3);
        assert!(!cands.is_empty());
    }
}
